"""Integration tests for the dynamic-rupture fault solver."""

import numpy as np
import pytest

from repro.core.materials import elastic
from repro.core.riemann import FaceKind
from repro.core.solver import CoupledSolver
from repro.mesh.generators import box_mesh
from repro.rupture.fault import FaultSolver, Prestress
from repro.rupture.friction import LinearSlipWeakening, RateStateFastVelocityWeakening

ROCK = elastic(2670.0, 6000.0, 3464.0)


def fault_box(L=6000.0, nc=8, absorbing=True):
    xs = np.linspace(-L / 2, L / 2, nc + 1)
    m = box_mesh(xs, xs, xs, [ROCK])
    n = m.mark_fault(lambda c, nrm: (np.abs(nrm[:, 0]) > 0.99) & (np.abs(c[:, 0]) < 1e-6))
    assert n > 0
    if absorbing:
        m.tag_boundary(lambda c, nr: np.full(len(c), FaceKind.ABSORBING.value))
    return m


class TestLockedFault:
    def test_stays_locked_below_strength(self):
        """Stress below static strength: nothing happens, exactly."""
        fr = LinearSlipWeakening(mu_s=0.677, mu_d=0.525, d_c=0.4)
        fault = FaultSolver(fr, Prestress(sigma_n=-120e6, tau_s=20e6))
        s = CoupledSolver(fault_box(nc=4), order=2, fault=fault)
        for _ in range(15):
            s.step()
        assert fault.peak_slip_rate.max() == 0.0
        assert np.abs(s.Q).max() < 1e-10

    def test_locked_fault_transmits_waves_like_welded(self):
        """A wave crossing a locked fault behaves as if no fault existed."""

        def ic(x):
            out = np.zeros((len(x), 9))
            pulse = np.exp(-((x[:, 0] + 1500.0) ** 2) / (2 * 400.0**2))
            out[:, 0] = 1e5 * pulse  # weak P pulse, far below strength change
            out[:, 6] = -1e5 / ROCK.Zp * pulse
            return out

        fr = LinearSlipWeakening(mu_s=0.677, mu_d=0.525, d_c=0.4)
        fault = FaultSolver(fr, Prestress(sigma_n=-120e6, tau_s=20e6))
        s_fault = CoupledSolver(fault_box(), order=2, fault=fault)
        s_fault.set_initial_condition(ic)

        m_plain = fault_box()
        m_plain.interior.is_fault[:] = False
        s_plain = CoupledSolver(m_plain, order=2)
        s_plain.set_initial_condition(ic)

        for _ in range(40):
            s_fault.step()
            s_plain.step()
        scale = np.abs(s_plain.Q).max()
        assert np.abs(s_fault.Q - s_plain.Q).max() < 1e-6 * scale
        assert fault.peak_slip_rate.max() == 0.0


class TestSpontaneousRupture:
    def run_lsw(self, steps=150):
        def tau_s(x):
            r = np.sqrt(x[:, 1] ** 2 + x[:, 2] ** 2)
            return np.where(r < 1200.0, 85e6, 72e6)

        fr = LinearSlipWeakening(mu_s=0.677, mu_d=0.525, d_c=0.05)
        fault = FaultSolver(fr, Prestress(sigma_n=-120e6, tau_s=tau_s))
        s = CoupledSolver(fault_box(), order=2, fault=fault)
        for _ in range(steps):
            s.step()
        return s, fault

    def test_rupture_nucleates_and_propagates(self):
        s, fault = self.run_lsw()
        assert fault.peak_slip_rate.max() > 1.0
        assert 0.1 < fault.ruptured_fraction() <= 1.0
        # rupture front expands: points farther from the hypocenter break later
        r = np.sqrt(fault.points[:, :, 1] ** 2 + fault.points[:, :, 2] ** 2)
        rt = fault.rupture_time
        fin = np.isfinite(rt)
        near = rt[fin & (r < 800)]
        far = rt[fin & (r > 2000)]
        assert near.size and far.size
        assert np.median(near) < np.median(far)

    def test_rupture_speed_below_p_wave(self):
        s, fault = self.run_lsw()
        # measure front speed outside the (instantly broken) nucleation
        # patch, relative to the patch edge
        r = np.sqrt(fault.points[:, :, 1] ** 2 + fault.points[:, :, 2] ** 2)
        rt = fault.rupture_time
        fin = np.isfinite(rt) & (rt > 0.05) & (r > 1500.0)
        assert fin.any()
        speed = (r[fin] - 1200.0) / rt[fin]
        assert speed.max() < ROCK.cp * 1.05

    def test_moment_magnitude_grows(self):
        def tau_s(x):
            r = np.sqrt(x[:, 1] ** 2 + x[:, 2] ** 2)
            return np.where(r < 1200.0, 85e6, 72e6)

        fr = LinearSlipWeakening(mu_s=0.677, mu_d=0.525, d_c=0.05)
        fault = FaultSolver(fr, Prestress(sigma_n=-120e6, tau_s=tau_s))
        s = CoupledSolver(fault_box(), order=2, fault=fault)
        mags = []
        for _ in range(3):
            for _ in range(30):
                s.step()
            mags.append(fault.moment_magnitude())
        assert mags[0] < mags[1] < mags[2]

    def test_slip_direction_follows_prestress(self):
        """Shear prestress along s only: slip stays along s."""
        s, fault = self.run_lsw(steps=80)
        slipped = fault.slip > 0.01
        assert slipped.any()
        assert np.abs(fault.slip_t[slipped]).max() < 0.05 * np.abs(fault.slip_s[slipped]).max()

    def test_radiates_seismic_waves(self):
        s, fault = self.run_lsw(steps=100)
        v = s.evaluate(np.array([[1500.0, 0.0, 0.0]]))[0]
        assert np.abs(v[6:9]).max() > 1e-3


class TestRateStateRupture:
    def test_nucleates_with_overstress(self):
        fr = RateStateFastVelocityWeakening(a=0.01, b=0.014, L=0.2, Vw=0.1, fw=0.2, f0=0.6)

        def nuc(x):
            r = np.sqrt(x[:, 1] ** 2 + x[:, 2] ** 2)
            return np.where(r < 1200.0, 45e6, 0.0)

        fault = FaultSolver(
            fr, Prestress(sigma_n=-120e6, tau_s=45e6, nucleation_s=nuc)
        )
        s = CoupledSolver(fault_box(nc=8), order=2, fault=fault)
        for _ in range(100):
            s.step()
        assert fault.peak_slip_rate.max() > 1.0
        assert fault.slip.max() > 0.1
        assert len(fault.newton_iterations) > 0

    def test_no_overstress_stays_creeping(self):
        fr = RateStateFastVelocityWeakening(a=0.01, b=0.014, L=0.2, Vw=0.1, fw=0.2, f0=0.6)
        fault = FaultSolver(fr, Prestress(sigma_n=-120e6, tau_s=45e6))
        s = CoupledSolver(fault_box(nc=4), order=1, fault=fault)
        for _ in range(20):
            s.step()
        assert fault.peak_slip_rate.max() < 1e-10


class TestFaultAPI:
    def test_requires_marked_fault(self):
        m = fault_box(nc=4)
        m.interior.is_fault[:] = False
        fr = LinearSlipWeakening(mu_s=0.6, mu_d=0.3, d_c=0.4)
        with pytest.raises(ValueError):
            CoupledSolver(m, order=1, fault=FaultSolver(fr, Prestress()))

    def test_rejects_acoustic_side(self):
        from repro.core.materials import acoustic
        from repro.mesh.generators import layered_ocean_mesh

        water = acoustic(1000.0, 1500.0)
        xs = np.linspace(0, 2000.0, 3)
        m = layered_ocean_mesh(
            xs, xs, np.linspace(-2000.0, -500.0, 3), np.linspace(-500.0, 0.0, 2), ROCK, water
        )
        # mark the ocean-bottom interface as "fault"
        m.mark_fault(lambda c, n: (np.abs(n[:, 2]) > 0.99) & (np.abs(c[:, 2] + 500.0) < 1.0))
        fr = LinearSlipWeakening(mu_s=0.6, mu_d=0.3, d_c=0.4)
        with pytest.raises(ValueError):
            CoupledSolver(m, order=1, fault=FaultSolver(fr, Prestress()))

    def test_step_before_bind_raises(self):
        fr = LinearSlipWeakening(mu_s=0.6, mu_d=0.3, d_c=0.4)
        fault = FaultSolver(fr, Prestress())
        with pytest.raises(RuntimeError):
            fault.step(None, 0.1, None)

    def test_prestress_callable_and_scalar(self):
        p = Prestress(sigma_n=lambda x: -100e6 + x[:, 2], tau_s=30e6)
        pts = np.zeros((2, 3, 3))
        pts[..., 2] = 5.0
        sn, ts, tt = p.evaluate(pts)
        assert sn.shape == (2, 3)
        assert np.allclose(sn, -100e6 + 5.0)
        assert np.allclose(ts, 30e6)
        assert np.allclose(tt, 0.0)
