"""Tests for the Cauchy-Kowalewski predictor and Taylor utilities."""

import numpy as np

from repro.core.ader import ck_derivatives, star_matrices, taylor_evaluate, taylor_integrate
from repro.core.basis import get_reference_element
from repro.core.materials import elastic, jacobians
from repro.mesh.generators import box_mesh

ROCK = elastic(1.0, 2.0, 1.0)


def make_setup(order=2, nc=2):
    xs = np.linspace(0, 1, nc + 1)
    mesh = box_mesh(xs, xs, xs, [ROCK])
    ref = get_reference_element(order)
    star = star_matrices(mesh)
    return mesh, ref, star


class TestStarMatrices:
    def test_identity_map_recovers_jacobians(self):
        """For the reference tet itself, star matrices == (A, B, C)."""
        verts = np.array([[0.0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]])
        from repro.mesh.tetmesh import TetMesh

        mesh = TetMesh(verts, np.array([[0, 1, 2, 3]]), [ROCK])
        star = star_matrices(mesh)
        A, B, C = jacobians(ROCK)
        assert np.allclose(star[0, 0], A)
        assert np.allclose(star[0, 1], B)
        assert np.allclose(star[0, 2], C)

    def test_shape(self):
        mesh, ref, star = make_setup()
        assert star.shape == (mesh.n_elements, 3, 9, 9)


class TestCKDerivatives:
    def test_constant_state_is_steady(self):
        mesh, ref, star = make_setup(order=3)
        Q = np.zeros((mesh.n_elements, ref.nbasis, 9))
        Q[:, 0, :] = 1.234  # constant field
        derivs = ck_derivatives(Q, star, ref)
        assert np.abs(derivs[:, 1:]).max() < 1e-10

    def test_first_derivative_matches_pde(self):
        """dq/dt from CK equals -(A q_x + B q_y + C q_z) for a linear field."""
        mesh, ref, star = make_setup(order=2)
        rng = np.random.default_rng(0)
        g = rng.normal(size=(3, 9))  # gradient of each quantity

        def field(x):
            return x @ g

        pts = mesh.map_points(np.arange(mesh.n_elements), ref.vol_points)
        vals = field(pts.reshape(-1, 3)).reshape(pts.shape[0], -1, 9)
        Q = np.einsum("qb,q,eqn->ebn", ref.V, ref.vol_weights, vals)
        derivs = ck_derivatives(Q, star, ref)
        A, B, C = jacobians(ROCK)
        expect = -(g[0] @ A.T + g[1] @ B.T + g[2] @ C.T)  # constant in space
        # check cell means: first basis function is the constant sqrt(6)
        got = derivs[:, 1, 0, :] * np.sqrt(6.0)
        assert np.allclose(got, expect[None, :], atol=1e-8 * max(1, np.abs(expect).max()))

    def test_second_derivative_vanishes_for_linear(self):
        mesh, ref, star = make_setup(order=3)
        rng = np.random.default_rng(1)
        g = rng.normal(size=(3, 9))
        pts = mesh.map_points(np.arange(mesh.n_elements), ref.vol_points)
        vals = (pts.reshape(-1, 3) @ g).reshape(pts.shape[0], -1, 9)
        Q = np.einsum("qb,q,eqn->ebn", ref.V, ref.vol_weights, vals)
        derivs = ck_derivatives(Q, star, ref)
        # first derivative constant in space => second derivative zero
        assert np.abs(derivs[:, 2:]).max() < 1e-8 * np.abs(derivs[:, 1]).max()


class TestTaylor:
    def test_integrate_constant(self):
        derivs = np.zeros((3, 4, 5, 9))
        derivs[:, 0] = 2.0
        out = taylor_integrate(derivs, 0.0, 0.5)
        assert np.allclose(out, 1.0)

    def test_integrate_polynomial(self):
        """q(t) = q0 + q1 t + q2 t^2/2: integral over [a, b] is exact."""
        rng = np.random.default_rng(2)
        derivs = rng.normal(size=(2, 3, 4, 9))
        a, b = 0.2, 0.7
        exact = (
            derivs[:, 0] * (b - a)
            + derivs[:, 1] * (b**2 - a**2) / 2
            + derivs[:, 2] * (b**3 - a**3) / 6
        )
        assert np.allclose(taylor_integrate(derivs, a, b), exact)

    def test_evaluate_matches_series(self):
        rng = np.random.default_rng(3)
        derivs = rng.normal(size=(2, 3, 4, 9))
        tau = 0.3
        exact = derivs[:, 0] + derivs[:, 1] * tau + derivs[:, 2] * tau**2 / 2
        assert np.allclose(taylor_evaluate(derivs, tau), exact)

    def test_evaluate_vectorized_times(self):
        rng = np.random.default_rng(4)
        derivs = rng.normal(size=(2, 2, 4, 9))
        taus = np.array([0.0, 0.1, 0.5])
        out = taylor_evaluate(derivs, taus)
        assert out.shape == (3, 2, 4, 9)
        assert np.allclose(out[0], derivs[:, 0])

    def test_integrate_evaluate_consistency(self):
        """d/dt of the integral equals the evaluation (fundamental theorem)."""
        rng = np.random.default_rng(5)
        derivs = rng.normal(size=(1, 4, 3, 9))
        h = 1e-6
        t = 0.37
        fd = (taylor_integrate(derivs, 0, t + h) - taylor_integrate(derivs, 0, t - h)) / (2 * h)
        assert np.allclose(fd, taylor_evaluate(derivs, t), atol=1e-6)
