"""Span tracing: bounded buffer, Chrome-trace export, summarizer, CLI."""

import json
import threading
import time

import pytest

from repro.obs import ObsSession, get_telemetry
from repro.obs.telemetry import TraceBuffer
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    chrome_trace,
    export_chrome_trace,
    load_trace,
    summarize_trace,
    trace_summary_lines,
    validate_chrome_trace,
)

from tests.test_obs import build_coupled  # shared solver factory


@pytest.fixture(autouse=True)
def _clean_telemetry():
    tel = get_telemetry()
    tel.disable()
    tel.reset()
    yield
    tel.disable()
    tel.reset()


def _partitioned(order=2, workers=2):
    from repro.exec.partitioned import PartitionedBackend

    solver = build_coupled(order=order)
    backend = PartitionedBackend(workers=workers)
    backend.bind(solver)
    solver.backend = backend
    return solver, backend


# ----------------------------------------------------------------------
class TestTraceBuffer:
    def test_bounded_with_drop_counter(self):
        buf = TraceBuffer(capacity=3)
        for i in range(5):
            buf.add(f"s{i}", float(i), float(i) + 0.5, None)
        assert len(buf) == 3
        assert buf.dropped == 2
        snap = buf.snapshot()
        assert [s[0] for s in snap["spans"]] == ["s0", "s1", "s2"]
        assert snap["dropped"] == 2 and snap["capacity"] == 3

    def test_snapshot_sorted_by_begin_and_thread_names(self):
        buf = TraceBuffer()
        buf.add("late", 2.0, 3.0, None)
        buf.add("early", 0.0, 1.0, {"k": 1})
        snap = buf.snapshot()
        assert [s[0] for s in snap["spans"]] == ["early", "late"]
        tid = threading.get_ident()
        assert snap["threads"][tid] == threading.current_thread().name

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)


class TestTelemetryTracing:
    def test_phase_spans_recorded_when_tracing(self):
        tel = get_telemetry()
        tel.enable(trace=True)
        assert tel.tracing
        with tel.phase("step"):
            with tel.phase("predict"):
                pass
        spans = tel.trace_snapshot()["spans"]
        names = [s[0] for s in spans]
        # sorted by begin time: the outer phase opened first
        assert names == ["step", "step/predict"]
        for _, t0, t1, tid, _ in spans:
            assert t1 >= t0
            assert tid == threading.get_ident()

    def test_trace_span_and_add_span_carry_args(self):
        tel = get_telemetry()
        tel.enable(trace=True)
        with tel.trace_span("lts/cluster", cluster=2, elems=17):
            pass
        tel.add_span("worker/halo_gather", 1.0, 1.5, part=1, halo=4)
        spans = {s[0]: s for s in tel.trace_snapshot()["spans"]}
        assert spans["lts/cluster"][4] == {"cluster": 2, "elems": 17}
        assert spans["worker/halo_gather"][4] == {"part": 1, "halo": 4}

    def test_trace_off_modes_are_noops(self):
        tel = get_telemetry()
        # enabled without trace: trace entry points are shared no-ops
        tel.enable()
        assert not tel.tracing
        assert tel.trace_span("a") is tel.trace_span("b")
        tel.add_span("x", 0.0, 1.0)
        assert tel.trace_snapshot()["spans"] == []
        # plain enable() after a traced session drops the old buffer
        tel.enable(trace=True)
        with tel.trace_span("s"):
            pass
        tel.enable()
        assert not tel.tracing
        assert tel.trace_snapshot()["spans"] == []

    def test_reset_empties_buffer_but_keeps_trace_mode(self):
        tel = get_telemetry()
        tel.enable(trace=True, trace_capacity=7)
        tel.add_span("x", 0.0, 1.0)
        tel.reset()
        assert tel.tracing
        snap = tel.trace_snapshot()
        assert snap["spans"] == [] and snap["capacity"] == 7

    def test_disabled_overhead_with_trace_sites_below_two_percent(self):
        """The 2% guard extended to the trace entry points: a solver whose
        hot loops carry ``trace_span``/``add_span`` sites must stay free
        when telemetry is fully off."""
        solver = build_coupled(order=2)
        tel = get_telemetry()

        tel.enable(trace=True)
        solver.step()
        snap = tel.snapshot()
        n_spans = len(tel.trace_snapshot()["spans"])
        tel.disable()
        tel.reset()
        tel.enable()  # drop the buffer: measure the trace-disabled path
        tel.disable()
        sites = sum(c["calls"] for c in snap["phases"].values())
        sites += len(snap["counters"])
        sites += n_spans  # every span site also guards on tracing

        n = 50_000
        t0 = time.perf_counter()
        for _ in range(n):
            with tel.phase("x"):
                pass
            with tel.trace_span("y", part=0):
                pass
            tel.add_span("z", 0.0, 1.0, part=0)
        per_call = (time.perf_counter() - t0) / n

        t0 = time.perf_counter()
        for _ in range(3):
            solver.step()
        per_step = (time.perf_counter() - t0) / 3

        overhead = sites * per_call / per_step
        assert overhead < 0.02, (
            f"disabled trace instrumentation costs {overhead * 100:.3f}% of "
            f"a step ({sites} sites x {per_call * 1e9:.0f} ns)"
        )


# ----------------------------------------------------------------------
class TestChromeTraceExport:
    def test_traced_partitioned_run_round_trips(self, tmp_path):
        """The acceptance test: a traced 2-worker partitioned run exports
        valid Chrome-trace JSON with one lane per worker."""
        solver, backend = _partitioned(workers=2)
        tel = get_telemetry()
        tel.enable(trace=True)
        try:
            for _ in range(2):
                solver.step()
        finally:
            backend.close()

        path = str(tmp_path / "run.trace.json")
        doc = export_chrome_trace(path, metadata={"steps": 2})
        assert validate_chrome_trace(doc) == []

        loaded = load_trace(path)
        assert loaded == json.loads(json.dumps(doc))  # JSON round-trip
        other = loaded["otherData"]
        assert other["schema"] == TRACE_SCHEMA_VERSION
        assert other["steps"] == 2
        assert other["dropped"] == 0
        assert other["spans"] > 0

        events = loaded["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == other["spans"]
        for ev in xs:
            assert ev["ts"] >= 0 and ev["dur"] >= 0

        # one lane per partitioned worker, named and sorted
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        n_parts = len(backend.plans)
        assert n_parts >= 2
        assert {f"worker p{p.part_id}" for p in backend.plans} <= names
        worker_tids = {e["tid"] for e in xs
                       if "args" in e and "part" in e.get("args", {})}
        assert len(worker_tids) == n_parts  # distinct lanes
        assert all(t >= 10_000 for t in worker_tids)

        # the worker slices carry the structured args the summarizer needs
        span_names = {e["name"] for e in xs}
        assert {"worker/predict", "worker/halo_gather",
                "worker/compute"} <= span_names

    def test_lts_cluster_slices_colored_by_cluster(self, tmp_path):
        from repro.core.lts import LocalTimeStepping

        solver = build_coupled(order=1)
        lts = LocalTimeStepping(solver)
        tel = get_telemetry()
        tel.enable(trace=True)
        lts.run(solver.dt * 2)

        doc = chrome_trace(tel.trace_snapshot())
        assert validate_chrome_trace(doc) == []
        clusters = [e for e in doc["traceEvents"]
                    if e.get("name") == "lts/cluster"]
        assert clusters
        for ev in clusters:
            assert "cname" in ev  # colored by cluster id
            assert ev["args"]["cluster"] >= 0
            assert ev["args"]["elems"] > 0
        assert len({e["args"]["cluster"] for e in clusters}) == lts.n_clusters

    def test_dropped_spans_surface_in_export(self):
        tel = get_telemetry()
        tel.enable(trace=True, trace_capacity=2)
        for i in range(5):
            tel.add_span(f"s{i}", float(i), float(i) + 0.1)
        doc = chrome_trace(tel.trace_snapshot())
        assert doc["otherData"]["spans"] == 2
        assert doc["otherData"]["dropped"] == 3

    def test_empty_snapshot_exports_empty_valid_doc(self, tmp_path):
        path = str(tmp_path / "empty.trace.json")
        doc = export_chrome_trace(path)  # registry never traced
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["spans"] == 0


class TestValidator:
    def test_rejects_malformed_documents(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []

    def test_flags_bad_events(self):
        doc = {"traceEvents": [
            {"ph": "X", "name": "a", "ts": -1.0, "dur": 2.0, "pid": 0, "tid": 0},
            {"ph": "X", "name": "b", "ts": 0.0, "dur": -2.0, "pid": 0, "tid": 0},
            {"ph": "X", "ts": 0.0, "dur": 1.0, "pid": 0, "tid": 0},
            {"ph": "Q", "name": "c"},
            {"ph": "E", "name": "d", "ts": 0.0, "pid": 0, "tid": 1},
            {"ph": "B", "name": "e", "ts": 5.0, "pid": 0, "tid": 1},
            {"ph": "B", "name": "f", "ts": 4.0, "pid": 0, "tid": 1},
        ]}
        errors = validate_chrome_trace(doc)
        text = "\n".join(errors)
        assert "negative ts" in text
        assert "negative dur" in text
        assert "missing 'name'" in text
        assert "unknown phase" in text
        assert "E event without matching B" in text
        assert "non-monotone ts" in text
        assert "unclosed B" in text

    def test_accepts_matched_duration_events(self):
        doc = {"traceEvents": [
            {"ph": "B", "name": "a", "ts": 0.0, "pid": 0, "tid": 0},
            {"ph": "B", "name": "b", "ts": 1.0, "pid": 0, "tid": 0},
            {"ph": "E", "ts": 2.0, "pid": 0, "tid": 0},
            {"ph": "E", "ts": 3.0, "pid": 0, "tid": 0},
        ]}
        assert validate_chrome_trace(doc) == []


# ----------------------------------------------------------------------
class TestSummarizer:
    def _traced_partitioned_doc(self):
        solver, backend = _partitioned(workers=2)
        tel = get_telemetry()
        tel.enable(trace=True)
        try:
            for _ in range(2):
                solver.step()
        finally:
            backend.close()
        return chrome_trace(tel.trace_snapshot()), backend

    def test_summary_metrics(self):
        doc, backend = self._traced_partitioned_doc()
        s = summarize_trace(doc)
        assert s["wall_s"] > 0
        assert 0 < s["critical_path_s"] <= s["wall_s"] * (1 + 1e-9)
        assert s["parallelism"] >= 1.0
        for p in backend.plans:
            lane = s["lanes"][f"worker p{p.part_id}"]
            assert lane["busy_s"] > 0
            assert 0.0 <= lane["idle_fraction"] <= 1.0
        assert s["totals"]["worker/compute"]["calls"] == \
            2 * len(backend.plans)
        # the halo-overlap block exists for worker traces
        assert s["halo"] is not None
        assert 0.0 <= s["halo"]["overlap_fraction"] <= 1.0
        assert s["halo"]["overlapped_s"] <= s["halo"]["halo_s"] * (1 + 1e-9)

    def test_critical_path_on_synthetic_timeline(self):
        # two lanes: [0,1] & [2,3] chain on lane A (2 s), [0.5, 1.5] on B;
        # the longest non-overlapping chain is A's 2 s
        doc = {"traceEvents": [
            {"ph": "X", "name": "a1", "ts": 0.0, "dur": 1e6, "pid": 0, "tid": 0},
            {"ph": "X", "name": "a2", "ts": 2e6, "dur": 1e6, "pid": 0, "tid": 0},
            {"ph": "X", "name": "b", "ts": 0.5e6, "dur": 1e6, "pid": 0, "tid": 1},
        ]}
        s = summarize_trace(doc)
        assert s["wall_s"] == pytest.approx(3.0)
        assert s["critical_path_s"] == pytest.approx(2.0)
        # nested spans don't inflate lane busy time
        doc["traceEvents"].append(
            {"ph": "X", "name": "a1/inner", "ts": 0.2e6, "dur": 0.5e6,
             "pid": 0, "tid": 0})
        s2 = summarize_trace(doc)
        assert s2["lanes"]["lane-0"]["busy_s"] == pytest.approx(2.0)

    def test_summary_lines_render(self):
        doc, _ = self._traced_partitioned_doc()
        lines = trace_summary_lines(summarize_trace(doc), doc["otherData"])
        text = "\n".join(lines)
        assert "critical path" in text
        assert "worker p" in text
        assert "halo gather" in text
        assert "top spans" in text

    def test_empty_trace_summary(self):
        s = summarize_trace({"traceEvents": []})
        assert s["wall_s"] == 0.0 and s["halo"] is None
        assert s["dropped"] == 0 and s["truncated"] is False

    def test_truncated_trace_surfaces_drop_count(self):
        # regression: a wrapped exporter ring used to vanish silently —
        # the summary must carry the drop count and warn the reader that
        # every number under-counts the run
        tel = get_telemetry()
        tel.enable(trace=True, trace_capacity=2)
        for i in range(7):
            tel.add_span(f"s{i}", float(i), float(i) + 0.1)
        doc = chrome_trace(tel.trace_snapshot())
        s = summarize_trace(doc)
        assert s["dropped"] == 5
        assert s["capacity"] == 2
        assert s["truncated"] is True
        text = "\n".join(trace_summary_lines(s, doc["otherData"]))
        assert "WARNING: trace truncated" in text
        assert "5 span(s) dropped" in text

    def test_untruncated_trace_has_no_warning(self):
        doc, _ = self._traced_partitioned_doc()
        s = summarize_trace(doc)
        assert s["truncated"] is False
        text = "\n".join(trace_summary_lines(s, doc["otherData"]))
        assert "WARNING: trace truncated" not in text


# ----------------------------------------------------------------------
class TestCliAndSession:
    def test_obs_trace_cli(self, tmp_path, capsys):
        from repro.__main__ import main

        solver, backend = _partitioned(workers=2)
        tel = get_telemetry()
        tel.enable(trace=True)
        try:
            solver.step()
        finally:
            backend.close()
        path = str(tmp_path / "run.trace.json")
        export_chrome_trace(path)
        tel.disable()

        assert main(["obs-trace", path, "--check"]) == 0
        out = capsys.readouterr().out
        assert "-> OK" in out
        assert "trace span timeline" in out
        assert "worker p0" in out

        bad = str(tmp_path / "bad.trace.json")
        with open(bad, "w") as fh:
            json.dump({"traceEvents": [{"ph": "X", "ts": -1.0}]}, fh)
        assert main(["obs-trace", bad]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_obs_session_trace_export(self, tmp_path, capsys):
        path = str(tmp_path / "session.trace.json")
        solver = build_coupled(order=1)
        obs = ObsSession(trace=path, config={"command": "trace-test"})
        assert obs.active
        obs.start(solver)
        cb = obs.chain(None)
        for _ in range(2):
            solver.step()
            cb(solver)
        obs.finish(solver)

        tel = get_telemetry()
        assert not tel.enabled  # session-owned registry switched back off
        doc = load_trace(path)
        assert validate_chrome_trace(doc) == []
        assert doc["otherData"]["spans"] > 0
        assert doc["otherData"]["steps"] == 2
        assert doc["otherData"]["config"]["command"] == "trace-test"
        assert "trace:" in capsys.readouterr().out

    def test_trace_composes_with_profile(self, tmp_path, capsys):
        path = str(tmp_path / "both.trace.json")
        solver = build_coupled(order=1)
        obs = ObsSession(profile=True, trace=path)
        obs.start(solver)
        solver.step()
        obs.finish(solver)
        out = capsys.readouterr().out
        assert "== profile" in out and "trace:" in out
        assert validate_chrome_trace(load_trace(path)) == []

    def test_quickstart_example_accepts_trace(self, tmp_path):
        import inspect
        import sys
        from pathlib import Path

        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "examples"))
        try:
            import quickstart
        finally:
            sys.path.pop(0)
        assert "trace" in inspect.signature(quickstart.main).parameters
