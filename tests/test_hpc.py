"""Tests for the HPC substrate: partitioning, machines, perf model,
pinning, and the strong-scaling simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lts import cluster_elements
from repro.core.materials import acoustic, elastic
from repro.core.riemann import FaceKind
from repro.hpc.machine import AMD_ROME_7H12, MAHTI, SHAHEEN2, SUPERMUC_NG
from repro.hpc.partition import (
    comm_volume,
    edge_cut,
    eq28_vertex_weights,
    imbalance,
    partition_geometric,
    partition_mesh,
    refine_partition,
)
from repro.hpc.perfmodel import NodePerformanceModel, dof_count, kernel_counts
from repro.hpc.pinning import NodeTopology, pin_node
from repro.hpc.scaling import StrongScalingModel
from repro.mesh.generators import box_mesh, layered_ocean_mesh

ROCK = elastic(2700.0, 6000.0, 3464.0)
WATER = acoustic(1000.0, 1500.0)


def ocean_mesh(n=4):
    xs = np.linspace(0, 4000.0, n + 1)
    m = layered_ocean_mesh(
        xs, xs, np.linspace(-3000.0, -1000.0, 3), np.linspace(-1000.0, 0.0, 3), ROCK, WATER
    )

    def tagger(cent, nrm):
        tags = np.full(len(cent), FaceKind.ABSORBING.value)
        top = (nrm[:, 2] > 0.99) & (np.abs(cent[:, 2]) < 1.0)
        tags[top] = FaceKind.GRAVITY_FREE_SURFACE.value
        return tags

    m.tag_boundary(tagger)
    return m


class TestEq28Weights:
    def test_plain_element_weight(self):
        m = box_mesh(*(np.linspace(0, 1, 3),) * 3, [ROCK])
        cl = np.zeros(m.n_elements, dtype=int)
        w = eq28_vertex_weights(m, cl)
        assert (w == 100).all()

    def test_lts_rate_factor(self):
        m = box_mesh(*(np.linspace(0, 1, 3),) * 3, [ROCK])
        cl = np.zeros(m.n_elements, dtype=int)
        cl[0] = 0
        cl[1:] = 1
        w = eq28_vertex_weights(m, cl)
        assert w[0] == 200  # updates twice as often
        assert (w[1:] == 100).all()

    def test_gravity_surcharge(self):
        m = ocean_mesh()
        cl = np.zeros(m.n_elements, dtype=int)
        w = eq28_vertex_weights(m, cl, w_g=300)
        bnd = m.boundary
        grav_elems = np.unique(bnd.elem[bnd.kind == FaceKind.GRAVITY_FREE_SURFACE.value])
        assert (w[grav_elems] >= 400).all()
        others = np.setdiff1d(np.arange(m.n_elements), grav_elems)
        assert (w[others] == 100).all()

    def test_fault_surcharge(self):
        m = box_mesh(*(np.linspace(0, 1, 3),) * 3, [ROCK])
        m.mark_fault(lambda c, n: (np.abs(n[:, 0]) > 0.99) & (np.abs(c[:, 0] - 0.5) < 1e-9))
        cl = np.zeros(m.n_elements, dtype=int)
        w = eq28_vertex_weights(m, cl, w_dr=200)
        assert w.max() >= 300


class TestPartitioner:
    def test_balance_uniform(self):
        rng = np.random.default_rng(0)
        pts = rng.random((2000, 3))
        w = np.ones(2000)
        parts = partition_geometric(pts, w, 8)
        assert imbalance(parts, w) < 1.05

    def test_honors_tpwgts(self):
        rng = np.random.default_rng(1)
        pts = rng.random((4000, 3))
        w = np.ones(4000)
        tpw = np.array([0.5, 0.25, 0.125, 0.125])
        parts = partition_geometric(pts, w, 4, tpw)
        loads = np.bincount(parts, weights=w) / w.sum()
        assert np.allclose(loads, tpw, atol=0.02)

    def test_weighted_elements(self):
        rng = np.random.default_rng(2)
        pts = rng.random((3000, 3))
        w = rng.integers(1, 10, size=3000).astype(float)
        parts = partition_geometric(pts, w, 6)
        assert imbalance(parts, w) < 1.1

    def test_spatial_locality_bounds_cut(self):
        """Geometric partitions of a mesh must cut far fewer faces than a
        random assignment."""
        m = box_mesh(*(np.linspace(0, 1, 9),) * 3, [ROCK])
        parts = partition_mesh(m, 8)
        edges = m.dual_graph_edges()
        rng = np.random.default_rng(3)
        random_parts = rng.integers(0, 8, m.n_elements)
        assert edge_cut(parts, edges) < 0.4 * edge_cut(random_parts, edges)

    def test_refinement_does_not_worsen(self):
        m = box_mesh(*(np.linspace(0, 1, 7),) * 3, [ROCK])
        w = np.ones(m.n_elements)
        edges = m.dual_graph_edges()
        parts = partition_geometric(m.centroids, w, 4)
        cut0 = edge_cut(parts, edges)
        refined = refine_partition(parts, edges, w, np.full(4, 0.25))
        assert edge_cut(refined, edges) <= cut0
        assert imbalance(refined, w) < 1.1

    def test_comm_volume_symmetry(self):
        m = box_mesh(*(np.linspace(0, 1, 5),) * 3, [ROCK])
        parts = partition_mesh(m, 2)
        vol = comm_volume(parts, m.dual_graph_edges())
        assert vol[0] == vol[1] > 0

    def test_validation(self):
        pts = np.zeros((10, 3))
        with pytest.raises(ValueError):
            partition_geometric(pts, np.ones(10), 0)
        with pytest.raises(ValueError):
            partition_geometric(pts, np.ones(10), 2, np.array([0.9, 0.3]))

    @given(st.integers(min_value=1, max_value=13))
    @settings(max_examples=8, deadline=None)
    def test_every_part_nonempty(self, n_parts):
        rng = np.random.default_rng(42)
        pts = rng.random((200, 3))
        parts = partition_geometric(pts, np.ones(200), n_parts)
        assert len(np.unique(parts)) == n_parts


class TestMachines:
    def test_rome_peak_matches_paper(self):
        """Sec. 5.1: 'peak performance of 5325 GFLOPS per node'."""
        assert abs(AMD_ROME_7H12.peak_gflops - 5325.0) < 1.0
        assert AMD_ROME_7H12.n_numa == 8
        assert AMD_ROME_7H12.cores == 128

    def test_machine_inventory(self):
        assert SHAHEEN2.n_nodes == 6174
        assert SUPERMUC_NG.n_nodes == 6336
        assert MAHTI.n_nodes == 1404
        assert MAHTI.node.cores == 128
        assert SUPERMUC_NG.node.cores == 48

    def test_ng_heterogeneity_matches_sec62(self):
        """Slowest node at 60.4% of average."""
        assert np.isclose(SUPERMUC_NG.perf_min, 0.604, atol=0.01)

    def test_speed_sampling(self):
        speeds = MAHTI.sample_node_speeds(500, np.random.default_rng(0))
        assert speeds.shape == (500,)
        assert 0.95 < speeds.mean() < 1.05
        assert speeds.min() >= MAHTI.perf_min - 1e-12

    def test_force_straggler(self):
        speeds = MAHTI.sample_node_speeds(10, np.random.default_rng(0), force_straggler=True)
        assert np.isclose(speeds.min(), MAHTI.perf_min)

    def test_topology_penalty_monotone(self):
        net = SUPERMUC_NG.network
        assert net.penalty(1) <= net.penalty(100) <= net.penalty(6000)


class TestPerfModel:
    def test_dof_counts_match_paper(self):
        """Sec. 6.2: M mesh 89M elements ~ 46 GDOF; L mesh 518M ~ 261 GDOF
        at order 5 (B_5 = 56, x9 quantities)."""
        assert abs(dof_count(518_000_000, 5) - 261e9) < 3e9
        assert abs(dof_count(89_000_000, 5) - 46e9) < 2e9

    def test_flops_grow_with_order(self):
        f = [kernel_counts(o).flops_total for o in range(1, 6)]
        assert all(a < b for a, b in zip(f, f[1:]))

    def test_sec51_numa_study(self):
        """All five measured Rome numbers within 15% of the model."""
        m = NodePerformanceModel(AMD_ROME_7H12, order=5)
        checks = [
            (m.predictor_gflops(), 3360.0),
            (m.predictor_gflops(1), 428.0),
            (m.full_gflops(), 2053.0),
            (m.full_gflops(1), 376.0),
            (m.full_gflops(4), 1390.0),
        ]
        for got, want in checks:
            assert abs(got - want) / want < 0.15, (got, want)

    def test_numa_effect_direction(self):
        """More ranks per node must improve the corrector-inclusive rate but
        leave the predictor untouched (Sec. 5.1 hypothesis)."""
        m = NodePerformanceModel(AMD_ROME_7H12, order=5)
        assert m.full_gflops(ranks_per_node=8) > m.full_gflops(ranks_per_node=1)
        assert m.predictor_gflops() == pytest.approx(m.predictor_gflops())

    def test_extrapolation_matches_paper_structure(self):
        """Sec. 5.1: single-NUMA x 8 extrapolation must exceed the measured
        full-node rate for the corrector (the NUMA penalty) but not for the
        predictor."""
        m = NodePerformanceModel(AMD_ROME_7H12, order=5)
        assert m.numa_extrapolated_limit(full=True) > m.full_gflops()
        assert m.numa_extrapolated_limit(full=False) == pytest.approx(
            m.predictor_gflops(), rel=0.02
        )


class TestPinning:
    def rome(self):
        return NodeTopology(sockets=2, numa_per_socket=4, cores_per_numa=16, smt=2)

    @pytest.mark.parametrize("rpn", [1, 2, 8])
    def test_disjoint_and_numa_local(self, rpn):
        plan = pin_node(self.rome(), rpn)
        topo = plan.topology
        workers = plan.all_worker_cpus()
        assert len(np.unique(workers)) == len(workers)
        for r in range(rpn):
            assert plan.comm_cpu[r] not in workers
            dom = {topo.numa_of_cpu(c) for c in plan.worker_cpus[r]}
            assert topo.numa_of_cpu(plan.comm_cpu[r]) in dom
        assert len(set(plan.comm_cpu)) == rpn

    def test_one_free_core_per_rank(self):
        topo = self.rome()
        for rpn in (1, 2, 4, 8):
            plan = pin_node(topo, rpn)
            used_phys = {c % topo.n_cores for c in plan.all_worker_cpus()}
            assert len(used_phys) == topo.n_cores - rpn

    def test_smt_workers(self):
        topo = self.rome()
        plan = pin_node(topo, 2)
        # both hyperthreads of each worker core are used
        workers = set(plan.all_worker_cpus().tolist())
        for c in list(workers):
            phys = c % topo.n_cores
            assert phys in {w % topo.n_cores for w in workers}
            assert (phys in workers) == (phys + topo.n_cores in workers)

    def test_io_thread(self):
        plan = pin_node(self.rome(), 2, pin_io=True)
        assert len(plan.io_cpu) == 2
        assert set(plan.io_cpu).isdisjoint(set(plan.comm_cpu))
        assert set(plan.io_cpu).isdisjoint(set(plan.all_worker_cpus().tolist()))

    def test_validation(self):
        with pytest.raises(ValueError):
            pin_node(self.rome(), 0)
        with pytest.raises(ValueError):
            pin_node(self.rome(), 7)  # does not divide 128
        with pytest.raises(ValueError):
            pin_node(NodeTopology(1, 1, 1), 1)  # no room for free core


class TestScalingModel:
    @pytest.fixture(scope="class")
    def model(self):
        m = ocean_mesh(n=10)
        cl, _ = cluster_elements(m, 3)
        return StrongScalingModel(m, cl, order=3, machine=MAHTI)

    def test_efficiency_decays(self, model):
        res = model.sweep([1, 2, 8, 24])
        effs = [r.parallel_efficiency for r in res]
        assert effs[0] == 1.0
        assert effs[-1] < 0.95
        assert effs[-1] > 0.2

    def test_more_ranks_per_node_helps_at_fixed_nodes(self, model):
        r1 = model.simulate(4, ranks_per_node=1)
        r8 = model.simulate(4, ranks_per_node=8)
        assert r8.gflops_per_node > r1.gflops_per_node

    def test_node_weights_help_with_straggler(self, model):
        r_w = model.simulate(8, 2, use_node_weights=True, force_straggler=True)
        r_n = model.simulate(8, 2, use_node_weights=False, force_straggler=True)
        assert r_n.gflops_per_node < r_w.gflops_per_node

    def test_total_flops_invariant(self, model):
        r1 = model.simulate(2)
        r2 = model.simulate(4)
        assert np.isclose(
            r1.gflops_per_node * r1.n_nodes * r1.time_per_macro_step,
            r2.gflops_per_node * r2.n_nodes * r2.time_per_macro_step,
        )

    def test_rejects_overdecomposition(self, model):
        with pytest.raises(ValueError):
            model.simulate(model.mesh.n_elements + 1)
