"""Tests for the verification-scenario builders (repro.scenarios.convergence)."""

import numpy as np
import pytest

from repro.core.materials import acoustic, elastic
from repro.scenarios.convergence import (
    CoupledModeSetup,
    coupled_mode_frequency,
    l2_error,
    periodic_box_solver,
    plane_wave,
)


class TestPlaneWave:
    def test_p_wave_speed(self):
        mat = elastic(1.0, 2.0, 1.0)
        exact, c = plane_wave(mat, "P")
        assert c == mat.cp

    def test_s_wave_rejected_for_acoustic(self):
        with pytest.raises(ValueError):
            plane_wave(acoustic(1.0, 1.0), "S")

    def test_unknown_wave_rejected(self):
        with pytest.raises(ValueError):
            plane_wave(elastic(1.0, 2.0, 1.0), "R")

    def test_exact_is_eigenmode(self):
        """The plane-wave field must satisfy q_t = -(A q_x) exactly."""
        from repro.core.materials import jacobians

        mat = elastic(1.0, 2.0, 1.0)
        exact, c = plane_wave(mat, "S")
        A = jacobians(mat)[0]
        x = np.array([[0.3, 0.1, 0.9]])
        h = 1e-6
        dqdt = (exact(x, h) - exact(x, -h)) / (2 * h)
        dqdx = (exact(x + [[h, 0, 0]], 0.0) - exact(x - [[h, 0, 0]], 0.0)) / (2 * h)
        assert np.allclose(dqdt, -dqdx @ A.T, atol=1e-4)


class TestCoupledMode:
    def test_frequency_solves_dispersion(self):
        earth = elastic(2.5, 4.0, 2.0)
        ocean = acoustic(1.0, 1.5)
        h_e, h_o = 2.0, 1.0
        w = coupled_mode_frequency(h_e, h_o, earth, ocean)
        lhs = ocean.Zp * np.tan(w * h_o / ocean.cp) * np.tan(w * h_e / earth.cp)
        assert np.isclose(lhs, earth.Zp, rtol=1e-10)
        assert w > 0

    def test_exact_satisfies_interface_conditions(self):
        setup = CoupledModeSetup()
        zi = -setup.h_o
        eps = 1e-8
        above = setup.exact(np.array([[0.0, 0.0, zi + eps]]), 0.3)
        below = setup.exact(np.array([[0.0, 0.0, zi - eps]]), 0.3)
        # continuity of szz (normal traction) and vz across the interface
        assert np.isclose(above[0, 2], below[0, 2], rtol=1e-5)
        assert np.isclose(above[0, 8], below[0, 8], rtol=1e-5, atol=1e-12)

    def test_exact_boundary_conditions(self):
        setup = CoupledModeSetup()
        # pressure-free at the top
        top = setup.exact(np.array([[0.0, 0.0, 0.0]]), 0.2)
        assert abs(top[0, 2]) < 1e-12
        # wall (u = 0 -> v = 0) at the bottom
        bot = setup.exact(np.array([[0.0, 0.0, -(setup.h_e + setup.h_o)]]), 0.2)
        assert abs(bot[0, 8]) < 1e-12

    def test_simulation_tracks_mode(self):
        """Quarter-period evolution matches the exact standing mode."""
        setup = CoupledModeSetup()
        s = setup.build_solver(n_z_per_layer=3, order=3)
        T = 2 * np.pi / setup.omega
        t_end = 0.25 * T
        n = int(np.ceil(t_end / s.dt))
        for _ in range(n):
            s.step(t_end / n)
        ref = l2_error(s, lambda x, t: np.zeros((len(x), 9)), 0.0)
        assert l2_error(s, setup.exact, s.t) < 5e-4 * ref


class TestHelpers:
    def test_periodic_box_has_no_boundary(self):
        s = periodic_box_solver(elastic(1.0, 2.0, 1.0), 3, 1)
        assert len(s.mesh.boundary) == 0

    def test_l2_error_zero_for_projection(self):
        mat = elastic(1.0, 2.0, 1.0)
        s = periodic_box_solver(mat, 3, 2)
        exact, _ = plane_wave(mat, "P")
        s.set_initial_condition(lambda x: exact(x, 0.0))
        e = l2_error(s, exact, 0.0)
        ref = l2_error(s, lambda x, t: np.zeros((len(x), 9)), 0.0)
        assert e < 0.05 * ref
