"""Serial vs partitioned execution backends: trajectory equivalence.

The partitioned backend must be an *execution* detail, never a *physics*
detail: GTS and LTS trajectories on coupled acoustic-elastic meshes with
gravity surfaces and rupturing fault faces have to match the serial
backend at any worker count, and a checkpoint written under one backend
must resume under another.  The tests here pin that contract, plus the
operator-plan cache semantics the backends share (hit on identical
problems, invalidation on any mesh/material/order change).
"""

import numpy as np
import pytest

from repro.core.lts import LocalTimeStepping
from repro.core.materials import acoustic, elastic
from repro.core.resilience import ResilientRunner
from repro.core.solver import CoupledSolver, PointSource, ocean_surface_gravity_tagger
from repro.exec import (
    PartitionedBackend,
    SerialBackend,
    available_backends,
    clear_plan_cache,
    get_plan_cache,
    make_backend,
    mesh_fingerprint,
    plan_key,
)
from repro.mesh.generators import layered_ocean_mesh
from repro.rupture.fault import FaultSolver, Prestress
from repro.rupture.friction import LinearSlipWeakening

WORKER_COUNTS = (1, 2, 4)
T_GTS = 0.25
T_LTS = 0.3


# ---------------------------------------------------------------------------
# rigs
# ---------------------------------------------------------------------------
def build_gts(order=2, backend="serial", workers=None):
    """Coupled Earth-ocean solver: gravity surface + explosive source (GTS)."""
    crust = elastic(rho=2700.0, cp=4000.0, cs=2300.0)
    ocean = acoustic(rho=1000.0, cp=1500.0)
    xs = np.linspace(0.0, 2000.0, 4)
    mesh = layered_ocean_mesh(
        xs, xs,
        zs_earth=np.linspace(-1500.0, -500.0, 3),
        zs_ocean=np.linspace(-500.0, 0.0, 2),
        earth=crust, ocean=ocean,
    )
    mesh.tag_boundary(ocean_surface_gravity_tagger(mesh))
    solver = CoupledSolver(mesh, order=order, backend=backend, workers=workers)

    def ricker(t):
        a = (np.pi * 2.0 * (t - 0.3)) ** 2
        return (1.0 - 2.0 * a) * np.exp(-a)

    solver.add_source(
        PointSource([1000.0, 1000.0, -900.0], ricker, moment=[5e12] * 3 + [0, 0, 0])
    )
    return solver


def build_lts_fault_gravity(backend="serial", workers=None):
    """Rupturing fault under a gravity-topped ocean, clustered LTS."""
    crust = elastic(2700.0, 6000.0, 3464.0)
    ocean = acoustic(1000.0, 1500.0)
    xs = np.linspace(-1500.0, 1500.0, 5)
    mesh = layered_ocean_mesh(
        xs, xs,
        zs_earth=np.linspace(-3000.0, -1000.0, 3),
        zs_ocean=np.linspace(-1000.0, 0.0, 2),
        earth=crust, ocean=ocean,
    )
    n = mesh.mark_fault(
        lambda c, nrm: (np.abs(nrm[:, 0]) > 0.99)
        & (np.abs(c[:, 0]) < 1e-6)
        & (c[:, 2] < -1000.0)
    )
    assert n > 0
    mesh.tag_boundary(ocean_surface_gravity_tagger(mesh))
    fr = LinearSlipWeakening(mu_s=0.677, mu_d=0.525, d_c=0.05)
    fault = FaultSolver(fr, Prestress(sigma_n=-120e6, tau_s=81.6e6))
    solver = CoupledSolver(mesh, order=1, fault=fault, backend=backend, workers=workers)
    lts = LocalTimeStepping(solver)
    return solver, fault, lts


def assert_states_match(ref, other, label=""):
    """Tight trajectory comparison: wavefield, sea surface, fault state."""
    q_scale = max(float(np.abs(ref.Q).max()), 1e-300)
    np.testing.assert_allclose(
        other.Q, ref.Q, rtol=1e-10, atol=1e-13 * q_scale,
        err_msg=f"wavefield diverged between backends {label}",
    )
    eta_scale = max(float(np.abs(ref.gravity.eta).max()), 1e-300)
    np.testing.assert_allclose(
        other.gravity.eta, ref.gravity.eta, rtol=1e-10, atol=1e-13 * eta_scale,
        err_msg=f"sea-surface height diverged between backends {label}",
    )
    if ref.fault is not None:
        for name in ref.fault.STATE_FIELDS:
            a, b = getattr(ref.fault, name), getattr(other.fault, name)
            scale = max(float(np.nanmax(np.abs(a), initial=0.0)), 1e-300)
            np.testing.assert_allclose(
                b, a, rtol=1e-10, atol=1e-13 * scale, equal_nan=True,
                err_msg=f"fault field {name!r} diverged between backends {label}",
            )


# ---------------------------------------------------------------------------
# GTS equivalence (gravity + source, no fault)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def gts_serial_reference():
    solver = build_gts()
    solver.run(T_GTS)
    return solver


class TestGTSEquivalence:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_partitioned_matches_serial(self, gts_serial_reference, workers):
        solver = build_gts(backend="partitioned", workers=workers)
        assert isinstance(solver.backend, PartitionedBackend)
        solver.run(T_GTS)
        assert_states_match(gts_serial_reference, solver, f"(GTS, {workers} workers)")
        assert solver.backend.stats()["halo_exchanges"] > 0
        solver.backend.close()

    def test_reference_actually_moves(self, gts_serial_reference):
        # guard against a trivially-passing comparison of all-zero states
        assert np.abs(gts_serial_reference.Q).max() > 0


# ---------------------------------------------------------------------------
# LTS equivalence (fault + gravity, rate-2 clusters)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def lts_serial_reference():
    solver, fault, lts = build_lts_fault_gravity()
    lts.run(T_LTS)
    return solver, fault, lts


class TestLTSEquivalence:
    @pytest.mark.parametrize(
        "workers",
        [1, 2, pytest.param(4, marks=pytest.mark.slow)],
    )
    def test_partitioned_matches_serial(self, lts_serial_reference, workers):
        ref, ref_fault, ref_lts = lts_serial_reference
        assert ref_lts.n_clusters > 1, "rig must exercise a real LTS hierarchy"
        assert ref_fault.slip.max() > 0, "rig must actually rupture"
        solver, fault, lts = build_lts_fault_gravity(
            backend="partitioned", workers=workers
        )
        lts.run(T_LTS)
        assert_states_match(ref, solver, f"(LTS, {workers} workers)")
        solver.backend.close()


# ---------------------------------------------------------------------------
# checkpoint/resume round trip under the partitioned backend
# ---------------------------------------------------------------------------
class TestCheckpointRoundTrip:
    @pytest.mark.slow
    def test_partitioned_resume_matches_serial_uninterrupted(self, tmp_path):
        t_end = 0.3
        baseline, _, lts = build_lts_fault_gravity()
        ResilientRunner(baseline, lts=lts, checkpoint_every=0.1,
                        verbose=False).run(t_end)

        # crash a checkpointed partitioned run after 0.2 s ...
        sB, _, ltsB = build_lts_fault_gravity(backend="partitioned", workers=2)
        ResilientRunner(
            sB, lts=ltsB, checkpoint_every=0.1, checkpoint_dir=str(tmp_path),
            verbose=False,
        ).run(0.2)
        sB.backend.close()

        # ... and resume it under the partitioned backend at another width
        sC, _, ltsC = build_lts_fault_gravity(backend="partitioned", workers=4)
        runner = ResilientRunner(
            sC, lts=ltsC, checkpoint_every=0.1, checkpoint_dir=str(tmp_path),
            verbose=False,
        )
        meta = runner.resume()
        assert meta["backend"] == "partitioned(workers=2, parts=2)"
        runner.run(t_end)
        assert_states_match(baseline, sC, "(checkpoint resume)")
        sC.backend.close()

    def test_gts_checkpoint_is_backend_portable(self, tmp_path):
        t_end = 0.2
        baseline = build_gts()
        ResilientRunner(baseline, checkpoint_every=0.1, verbose=False).run(t_end)

        victim = build_gts(backend="partitioned", workers=2)
        ResilientRunner(
            victim, checkpoint_every=0.1, checkpoint_dir=str(tmp_path),
            verbose=False,
        ).run(0.1)
        victim.backend.close()

        # resume the partitioned run's checkpoint under the serial backend
        resumed = build_gts()
        runner = ResilientRunner(
            resumed, checkpoint_every=0.1, checkpoint_dir=str(tmp_path),
            verbose=False,
        )
        runner.resume()
        runner.run(t_end)
        assert_states_match(baseline, resumed, "(cross-backend resume)")


# ---------------------------------------------------------------------------
# backend selection plumbing
# ---------------------------------------------------------------------------
class TestBackendSelection:
    def test_available(self):
        assert available_backends() == ("serial", "partitioned", "jit")

    def test_make_backend_names(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend(None), SerialBackend)
        b = make_backend("partitioned", workers=3)
        assert isinstance(b, PartitionedBackend) and b.workers == 3

    def test_make_backend_instance_passthrough(self):
        inst = SerialBackend()
        assert make_backend(inst) is inst
        with pytest.raises(ValueError, match="workers"):
            make_backend(inst, workers=2)

    def test_serial_rejects_multiple_workers(self):
        with pytest.raises(ValueError, match="one worker"):
            make_backend("serial", workers=4)

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("mpi")

    def test_describe_strings(self):
        gts = build_gts(backend="partitioned", workers=2)
        assert gts.backend.describe().startswith("partitioned(workers=2")
        assert build_gts().backend.describe() == "serial"
        gts.backend.close()

    def test_partition_count_capped_by_mesh(self):
        # more workers than elements must not crash the partitioner
        solver = build_gts(backend="partitioned", workers=4)
        st = solver.backend.stats()
        assert st["n_parts"] <= solver.mesh.n_elements
        assert sum(st["owned"]) == solver.mesh.n_elements  # disjoint cover
        solver.backend.close()


# ---------------------------------------------------------------------------
# operator-plan cache
# ---------------------------------------------------------------------------
class TestPlanCache:
    def test_identical_problem_hits(self):
        clear_plan_cache()
        build_gts()
        s0 = get_plan_cache().stats()
        assert s0["misses"] >= 1
        build_gts()
        s1 = get_plan_cache().stats()
        assert s1["hits"] == s0["hits"] + 1
        assert s1["misses"] == s0["misses"]

    def test_cached_plan_is_shared(self):
        clear_plan_cache()
        a, b = build_gts(), build_gts()
        assert a.op.star is b.op.star
        assert a.op.interior_groups is b.op.interior_groups

    def test_order_change_invalidates(self):
        clear_plan_cache()
        build_gts(order=2)
        misses0 = get_plan_cache().stats()["misses"]
        build_gts(order=1)
        assert get_plan_cache().stats()["misses"] == misses0 + 1

    def test_mesh_fingerprint_tracks_materials(self):
        a = build_gts().mesh
        b = build_gts().mesh
        assert mesh_fingerprint(a) == mesh_fingerprint(b)
        crust = elastic(rho=2700.0, cp=4000.0, cs=2300.0)
        ocean = acoustic(rho=1000.0, cp=1450.0)  # different sound speed
        xs = np.linspace(0.0, 2000.0, 4)
        c = layered_ocean_mesh(
            xs, xs,
            zs_earth=np.linspace(-1500.0, -500.0, 3),
            zs_ocean=np.linspace(-500.0, 0.0, 2),
            earth=crust, ocean=ocean,
        )
        c.tag_boundary(ocean_surface_gravity_tagger(c))
        assert mesh_fingerprint(c) != mesh_fingerprint(a)
        assert plan_key(c, 2, "godunov") != plan_key(a, 2, "godunov")

    def test_env_kill_switch(self, monkeypatch):
        clear_plan_cache()
        monkeypatch.setenv("REPRO_PLAN_CACHE", "0")
        a, b = build_gts(), build_gts()
        st = get_plan_cache().stats()
        assert st == {"entries": 0, "hits": 0, "misses": 0}
        assert a.op.star is not b.op.star

    def test_disabled_cache_still_correct(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_CACHE", "0")
        solver = build_gts()
        solver.run(0.05)
        assert np.isfinite(solver.Q).all()
