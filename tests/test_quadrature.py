"""Unit and property tests for the simplex quadrature rules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.quadrature import (
    gauss_jacobi_01,
    gauss_legendre_01,
    tetrahedron_rule,
    triangle_rule,
)


def _monomial_integral_tri(a: int, b: int) -> float:
    """Exact integral of r^a s^b over the unit triangle: a! b! / (a+b+2)!"""
    from math import factorial

    return factorial(a) * factorial(b) / factorial(a + b + 2)


def _monomial_integral_tet(a: int, b: int, c: int) -> float:
    from math import factorial

    return factorial(a) * factorial(b) * factorial(c) / factorial(a + b + c + 3)


class TestGaussJacobi:
    def test_weight_sum_alpha0(self):
        x, w = gauss_jacobi_01(5, 0)
        assert np.isclose(w.sum(), 1.0)

    def test_weight_sum_alpha1(self):
        x, w = gauss_jacobi_01(5, 1)
        assert np.isclose(w.sum(), 0.5)  # int_0^1 (1-x) dx

    def test_weight_sum_alpha2(self):
        x, w = gauss_jacobi_01(5, 2)
        assert np.isclose(w.sum(), 1.0 / 3.0)

    @pytest.mark.parametrize("alpha", [0, 1, 2])
    @pytest.mark.parametrize("n", [1, 2, 4, 7])
    def test_polynomial_exactness(self, alpha, n):
        x, w = gauss_jacobi_01(n, alpha)
        for deg in range(2 * n):
            # int_0^1 x^deg (1-x)^alpha dx = B(deg+1, alpha+1)
            from scipy.special import beta

            exact = beta(deg + 1, alpha + 1)
            assert np.isclose(np.sum(w * x**deg), exact, rtol=1e-12), deg

    def test_rejects_zero_points(self):
        with pytest.raises(ValueError):
            gauss_jacobi_01(0, 0)

    def test_nodes_inside(self):
        x, _ = gauss_jacobi_01(8, 1)
        assert np.all((x > 0) & (x < 1))


class TestTriangleRule:
    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_exactness(self, n):
        pts, w = triangle_rule(n)
        for a in range(2 * n):
            for b in range(2 * n - a):
                val = np.sum(w * pts[:, 0] ** a * pts[:, 1] ** b)
                assert np.isclose(val, _monomial_integral_tri(a, b), rtol=1e-11), (a, b)

    def test_points_inside(self):
        pts, w = triangle_rule(4)
        assert np.all(pts >= 0)
        assert np.all(pts.sum(axis=1) <= 1)
        assert np.all(w > 0)

    def test_area(self):
        _, w = triangle_rule(3)
        assert np.isclose(w.sum(), 0.5)


class TestTetRule:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_exactness(self, n):
        pts, w = tetrahedron_rule(n)
        deg = 2 * n - 1
        for a in range(deg + 1):
            for b in range(deg + 1 - a):
                for c in range(deg + 1 - a - b):
                    val = np.sum(w * pts[:, 0] ** a * pts[:, 1] ** b * pts[:, 2] ** c)
                    assert np.isclose(
                        val, _monomial_integral_tet(a, b, c), rtol=1e-10, atol=1e-15
                    ), (a, b, c)

    def test_volume(self):
        _, w = tetrahedron_rule(3)
        assert np.isclose(w.sum(), 1.0 / 6.0)

    def test_points_inside_positive_weights(self):
        pts, w = tetrahedron_rule(5)
        assert np.all(pts >= 0)
        assert np.all(pts.sum(axis=1) <= 1 + 1e-14)
        assert np.all(w > 0)

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=6, deadline=None)
    def test_rule_size(self, n):
        pts, w = tetrahedron_rule(n)
        assert pts.shape == (n**3, 3)
        assert w.shape == (n**3,)


class TestGaussLegendre01:
    def test_exactness(self):
        x, w = gauss_legendre_01(4)
        for deg in range(8):
            assert np.isclose(np.sum(w * x**deg), 1.0 / (deg + 1))
