"""Tests for the nonlinear shallow-water solver (one-way-linking baseline)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tsunami.swe import ShallowWaterSolver


def flat_channel(L=100.0, n=201, h0=4.0, boundary="wall"):
    return ShallowWaterSolver(
        np.linspace(0, L, n),
        np.linspace(0, 2, 3),
        lambda X, Y: np.full_like(X, -h0),
        boundary=boundary,
    )


class TestWellBalanced:
    def test_lake_at_rest_flat(self):
        s = flat_channel()
        s.run(2.0)
        assert np.abs(s.eta).max() < 1e-12
        assert np.abs(s.hu).max() < 1e-12

    def test_lake_at_rest_bumpy(self):
        """Hydrostatic reconstruction: no spurious currents over bathymetry."""
        xs = np.linspace(0, 10, 41)
        s = ShallowWaterSolver(
            xs, xs, lambda X, Y: -2.0 + 0.8 * np.exp(-((X - 5) ** 2 + (Y - 5) ** 2))
        )
        s.run(1.0)
        assert np.abs(s.eta).max() < 1e-11
        assert np.abs(s.hu).max() + np.abs(s.hv).max() < 1e-11

    def test_lake_at_rest_with_dry_island(self):
        xs = np.linspace(0, 10, 41)
        s = ShallowWaterSolver(
            xs, xs, lambda X, Y: -1.0 + 2.0 * np.exp(-((X - 5) ** 2 + (Y - 5) ** 2))
        )
        assert (s.h >= 0).all()
        dry0 = s.h <= s.h_dry
        s.run(1.0)
        assert np.abs(s.eta[~dry0]).max() < 1e-10


class TestWavePhysics:
    def test_gravity_wave_speed(self):
        """Small pulse travels at sqrt(g h)."""
        h0 = 4.0
        s = flat_channel(h0=h0)
        s.set_surface(lambda X, Y: 0.01 * np.exp(-((X - 30) ** 2) / (2 * 2.0**2)))
        s.run(5.0)
        i = np.argmax(s.eta[120:, 1]) + 120
        expected = 30 + np.sqrt(9.81 * h0) * 5.0
        assert abs(s.xc[i] - expected) < 2.0

    def test_volume_conservation(self):
        s = flat_channel(boundary="wall")
        s.set_surface(lambda X, Y: 0.5 * np.exp(-((X - 50) ** 2) / 50.0))
        v0 = s.volume()
        s.run(5.0)
        assert abs(s.volume() - v0) < 1e-9 * v0

    def test_dam_break_middle_state(self):
        """Stoker problem: middle state between the two levels, front
        bounded by the analytic rarefaction/shock speeds."""
        s = ShallowWaterSolver(
            np.linspace(0, 100, 201),
            np.linspace(0, 1, 2),
            lambda X, Y: np.full_like(X, -10.0),
            boundary="outflow",
        )
        s.set_surface(lambda X, Y: np.where(X < 50, 2.0, 0.0))
        s.run(2.0)
        eta_mid = s.eta[100, 0]
        assert 0.2 < eta_mid < 2.0
        # undisturbed far field
        assert abs(s.eta[5, 0] - 2.0) < 1e-6
        assert abs(s.eta[-5, 0]) < 1e-6

    def test_uplift_sources_wave(self):
        """Time-dependent bed motion radiates a gravity wave (the linking
        mechanism of Sec. 6.1)."""
        xs = np.linspace(0, 100, 101)
        s = ShallowWaterSolver(xs, xs, lambda X, Y: np.full_like(X, -2.0), boundary="wall")
        b0 = s.b.copy()
        up = 0.5 * np.exp(-((s.X - 50) ** 2 + (s.Y - 50) ** 2) / (2 * 10**2))
        s.set_bed_motion(lambda t: b0 + up * min(t / 2.0, 1.0))
        v0 = s.volume()
        s.run(4.0)
        assert s.eta.max() > 0.05
        assert abs(s.volume() - v0) < 1e-9 * v0
        # after the rise finished, a ring wave moves outward
        s.run(8.0)
        center = s.eta[50, 50]
        ring = s.eta[30, 50]
        assert ring > center

    def test_fast_uplift_transfers_fully(self):
        """Near-instant uplift: sea surface = uplift (long-wave limit)."""
        xs = np.linspace(0, 200, 101)
        s = ShallowWaterSolver(xs, xs, lambda X, Y: np.full_like(X, -2.0), boundary="wall")
        b0 = s.b.copy()
        up = 0.5 * np.exp(-((s.X - 100) ** 2 + (s.Y - 100) ** 2) / (2 * 30**2))
        T_rise = 0.1  # much shorter than the wave-escape time (~ 7 s)
        s.set_bed_motion(lambda t: b0 + up * min(t / T_rise, 1.0))
        s.run(0.2)
        assert np.isclose(s.eta.max(), 0.5, rtol=0.05)


class TestAPI:
    def test_rejects_nonuniform_grid(self):
        xs = np.array([0.0, 1.0, 3.0])
        with pytest.raises(ValueError):
            ShallowWaterSolver(xs, xs, lambda X, Y: -np.ones_like(X))

    def test_rejects_bad_boundary(self):
        xs = np.linspace(0, 1, 3)
        with pytest.raises(ValueError):
            ShallowWaterSolver(xs, xs, lambda X, Y: -np.ones_like(X), boundary="magic")

    def test_bed_array_shape_check(self):
        xs = np.linspace(0, 1, 5)
        with pytest.raises(ValueError):
            ShallowWaterSolver(xs, xs, np.zeros((3, 3)))

    def test_sample_eta(self):
        s = flat_channel()
        s.set_surface(lambda X, Y: 0.1 * np.sin(2 * np.pi * X / 100.0))
        v = s.sample_eta(np.array([[25.0, 1.0]]))
        assert np.isclose(v[0], 0.1, atol=0.01)

    @given(st.floats(min_value=0.5, max_value=10.0))
    @settings(max_examples=8, deadline=None)
    def test_stable_dt_positive(self, h0):
        s = flat_channel(h0=h0, n=21)
        assert 0 < s.stable_dt() < 10.0
