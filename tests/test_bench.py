"""Benchmark battery + regression-comparison harness."""

import importlib.util
import json
import os

import pytest

from repro.obs.bench import (
    BATTERY_KERNELS,
    BENCH_SCHEMA_VERSION,
    append_record,
    battery_lines,
    battery_problem,
    default_history_path,
    host_context,
    load_history,
    run_battery,
)


@pytest.fixture(scope="module")
def record():
    """One fast battery record, shared across the module (seconds to run)."""
    rec, path = run_battery(fast=True, repeats=1, append=False)
    assert path is None
    return rec


def _load_compare_tool():
    spec = importlib.util.spec_from_file_location(
        "bench_compare",
        os.path.join(os.path.dirname(__file__), "..", "tools",
                     "bench_compare.py"),
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _synthetic_record(seconds=1.0, gflops=5.0, model_gflops=20.0, **over):
    rec = {
        "schema": BENCH_SCHEMA_VERSION,
        "unix_time": 0.0,
        "git_rev": "deadbeef",
        "fingerprint": "f" * 64,
        "host": {"context": "test-ctx", "cpu_count": 4},
        "node": "local (nominal)",
        "order": 3,
        "fast": True,
        "n_elements": 100,
        "benches": {},
    }
    for name in BATTERY_KERNELS:
        cell = {"seconds": seconds, "repeats": 1}
        if name in ("predictor", "corrector"):
            cell["gflops"] = gflops
            cell["model_gflops"] = model_gflops
            cell["efficiency"] = gflops / model_gflops
        rec["benches"][name] = cell
    rec.update(over)
    return rec


# ----------------------------------------------------------------------
class TestBattery:
    def test_battery_problem_shape(self):
        solver = battery_problem(order=2, fast=True)
        assert solver.mesh.n_elements > 0
        assert len(solver.gravity.elem) > 0  # gravity surface is tagged
        assert solver.mesh.is_acoustic_elem.any()  # coupled ocean layer
        assert not solver.mesh.is_acoustic_elem.all()

    def test_record_schema(self, record):
        assert record["schema"] == BENCH_SCHEMA_VERSION
        assert record["fast"] is True
        assert len(record["fingerprint"]) == 64
        assert record["git_rev"]
        assert record["host"]["context"] == host_context()
        assert record["n_elements"] > 0
        for name in BATTERY_KERNELS:
            cell = record["benches"][name]
            assert cell["seconds"] > 0.0, name

    def test_modeled_kernels_carry_roofline_bounds(self, record):
        for name in ("predictor", "corrector"):
            cell = record["benches"][name]
            assert cell["elem_updates"] == record["n_elements"]
            assert cell["elem_updates_per_s"] == pytest.approx(
                cell["elem_updates"] / cell["seconds"])
            assert cell["model_gflops"] > 0
            assert cell["model_seconds"] > 0
            # a NumPy reproduction must not beat its own roofline
            assert cell["gflops"] <= cell["model_gflops"] * 1.05
            assert cell["efficiency"] == pytest.approx(
                cell["gflops"] / cell["model_gflops"])

    def test_structural_extras(self, record):
        assert record["benches"]["riemann_setup"]["faces"] > 0
        assert record["benches"]["gravity_ode"]["faces"] > 0
        assert record["benches"]["halo_gather"]["elem_updates"] > 0
        assert record["benches"]["lts_macro"]["clusters"] >= 1
        sched = record["benches"]["sched_replay"]
        assert sched["compile_seconds"] > 0.0
        assert sched["n_micro"] >= 16  # 16 macro steps, >= 1 micro each
        assert sched["n_sync"] == 16
        assert sched["micro_steps_per_s"] > 0.0

    def test_battery_lines_render(self, record):
        text = "\n".join(battery_lines(record))
        for name in BATTERY_KERNELS:
            assert name in text
        assert "GFLOP/s" in text

    def test_host_context_is_filename_safe(self):
        ctx = host_context()
        assert ctx and "/" not in ctx and " " not in ctx
        assert os.path.basename(default_history_path()) == f"BENCH_{ctx}.json"


class TestHistory:
    def test_append_and_load_round_trip(self, tmp_path, record):
        path = str(tmp_path / "BENCH_test.json")
        assert load_history(path)["records"] == []  # absent file: empty shape
        append_record(path, record)
        append_record(path, record)
        doc = load_history(path)
        assert doc["schema"] == BENCH_SCHEMA_VERSION
        assert len(doc["records"]) == 2
        assert doc["records"][0] == json.loads(json.dumps(record))

    def test_load_rejects_non_history_files(self, tmp_path):
        path = str(tmp_path / "BENCH_bad.json")
        with open(path, "w") as fh:
            json.dump([1, 2, 3], fh)
        with pytest.raises(ValueError, match="not a bench history"):
            load_history(path)

    def test_run_battery_appends(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        path = str(tmp_path / "BENCH_here.json")
        rec, out = run_battery(out=path, repeats=1)
        assert out == path
        assert load_history(path)["records"][-1] == json.loads(json.dumps(rec))


# ----------------------------------------------------------------------
class TestBenchCompare:
    def _history(self, *records):
        return {"schema": BENCH_SCHEMA_VERSION, "records": list(records)}

    def _write(self, tmp_path, doc):
        path = str(tmp_path / "BENCH_test.json")
        with open(path, "w") as fh:
            json.dump(doc, fh)
        return path

    def test_no_baseline_is_soft(self, tmp_path, capsys):
        mod = _load_compare_tool()
        path = self._write(tmp_path, self._history(_synthetic_record()))
        assert mod.main([path, "--check"]) == 0
        assert "no baseline" in capsys.readouterr().out

    def test_regression_soft_gates_until_three_baselines(self, tmp_path, capsys):
        mod = _load_compare_tool()
        base = [_synthetic_record(seconds=1.0) for _ in range(2)]
        slow = _synthetic_record(seconds=2.0)
        path = self._write(tmp_path, self._history(*base, slow))
        assert mod.main([path, "--check"]) == 0  # 2 baselines: warn only
        err = capsys.readouterr().err
        assert "soft gate" in err

        base3 = [_synthetic_record(seconds=1.0) for _ in range(3)]
        path = self._write(tmp_path, self._history(*base3, slow))
        assert mod.main([path, "--check"]) == 1  # 3 baselines: hard gate
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        # without --check the comparison reports but never gates on speed
        assert mod.main([path]) == 0

    def test_within_threshold_passes(self, tmp_path):
        mod = _load_compare_tool()
        base = [_synthetic_record(seconds=1.0) for _ in range(4)]
        ok = _synthetic_record(seconds=1.2)  # +20% < 25%
        path = self._write(tmp_path, self._history(*base, ok))
        assert mod.main([path, "--check"]) == 0
        assert mod.main([path, "--check", "--threshold", "0.1"]) == 1

    def test_incomparable_records_are_ignored(self, tmp_path, capsys):
        mod = _load_compare_tool()
        other = [_synthetic_record(seconds=0.1, n_elements=999)
                 for _ in range(5)]
        newest = _synthetic_record(seconds=1.0)
        path = self._write(tmp_path, self._history(*other, newest))
        assert mod.main([path, "--check"]) == 0
        assert "0 comparable baseline" in capsys.readouterr().out

    def test_kernel_variants_never_compared(self, tmp_path, capsys):
        """A variant switch starts a fresh trajectory: a fused record 10x
        faster than a batched history must not read as improvement — and a
        batched record after fused history must not read as regression."""
        mod = _load_compare_tool()
        batched = [_synthetic_record(seconds=1.0, kernel_variant="batched")
                   for _ in range(5)]
        fused = _synthetic_record(seconds=0.1, kernel_variant="fused")
        path = self._write(tmp_path, self._history(*batched, fused))
        assert mod.main([path, "--check"]) == 0
        assert "0 comparable baseline" in capsys.readouterr().out

        # ...and the mirror case: slow batched after a fast fused history
        fused_hist = [_synthetic_record(seconds=0.1, kernel_variant="fused")
                      for _ in range(5)]
        slow = _synthetic_record(seconds=1.0, kernel_variant="batched")
        path = self._write(tmp_path, self._history(*fused_hist, slow))
        assert mod.main([path, "--check"]) == 0
        assert "0 comparable baseline" in capsys.readouterr().out

    def test_pre_variant_records_compare_as_batched(self, tmp_path, capsys):
        """Records written before the kernel_variant field existed ran the
        then-only batched path and stay comparable to explicit batched."""
        mod = _load_compare_tool()
        legacy = [_synthetic_record(seconds=1.0) for _ in range(3)]
        for rec in legacy:
            assert "kernel_variant" not in rec
        new = _synthetic_record(seconds=1.05, kernel_variant="batched")
        path = self._write(tmp_path, self._history(*legacy, new))
        assert mod.main([path, "--check"]) == 0
        assert "3 comparable baseline" in capsys.readouterr().out

    def test_roofline_violation_always_fails(self, tmp_path, capsys):
        mod = _load_compare_tool()
        impossible = _synthetic_record(gflops=50.0, model_gflops=20.0)
        path = self._write(tmp_path, self._history(impossible))
        assert mod.main([path, "--check"]) == 1
        assert mod.main([path]) == 1  # even without --check
        assert "roofline" in capsys.readouterr().err

    def test_missing_file(self, tmp_path):
        mod = _load_compare_tool()
        path = str(tmp_path / "BENCH_nope.json")
        assert mod.main([path]) == 0
        assert mod.main([path, "--check"]) == 1

    def test_real_record_compares_clean(self, tmp_path, record):
        mod = _load_compare_tool()
        path = str(tmp_path / "BENCH_real.json")
        append_record(path, record)
        append_record(path, record)
        assert mod.main([path, "--check"]) == 0


class TestCli:
    def test_bench_cli(self, tmp_path, monkeypatch, capsys):
        from repro.__main__ import main

        monkeypatch.setenv("REPRO_FAST", "1")
        path = str(tmp_path / "BENCH_cli.json")
        assert main(["bench", "--out", path]) == 0
        out = capsys.readouterr().out
        assert "bench battery" in out
        assert "bench: appended record" in out
        assert len(load_history(path)["records"]) == 1
