"""Shared fixtures and helpers for the test suite.

Seed policy: every randomized test derives its draws from an explicit
integer seed (hypothesis ``@given(st.integers(...))`` with the
``derandomized`` profile below, or a parametrized seed list), never from
global RNG state.  That keeps the suite order-independent and safe under
parallel runners — each test's randomness is a pure function of its own
parameters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.materials import acoustic, elastic

try:
    from hypothesis import settings as _hyp_settings
except ImportError:  # pragma: no cover - hypothesis is an optional test dep
    pass
else:
    _hyp_settings.register_profile("repro", derandomize=True, deadline=None)
    _hyp_settings.load_profile("repro")


@pytest.fixture
def rock():
    """Generic crustal rock (cp=6000, cs=3464, rho=2700)."""
    return elastic(2700.0, 6000.0, 3464.0)


@pytest.fixture
def water():
    """Standard ocean water (c=1500, rho=1000)."""
    return acoustic(1000.0, 1500.0)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def random_unit_vector(rng):
    """Uniformly random unit vector (face normal / rotation axis)."""
    while True:
        n = rng.normal(size=3)
        norm = np.linalg.norm(n)
        if norm > 1e-6:
            return n / norm


def random_material(rng, kind=None):
    """Random physically-plausible material for property-based tests.

    ``kind`` is ``"elastic"``, ``"acoustic"`` or ``None`` (choose
    randomly).  Densities span soft sediment to mantle rock, cp spans
    water to fast crust, and cs/cp stays inside the physical Poisson
    range.
    """
    if kind is None:
        kind = ("elastic", "acoustic")[int(rng.integers(2))]
    rho = float(rng.uniform(800.0, 4000.0))
    cp = float(rng.uniform(1000.0, 9000.0))
    if kind == "acoustic":
        return acoustic(rho, cp)
    return elastic(rho, cp, float(rng.uniform(0.3, 0.65)) * cp)


def l2_error(solver, exact_fn, t):
    """Global L2 error of a CoupledSolver state against ``exact_fn(x, t)``."""
    ref = solver.op.ref
    mesh = solver.mesh
    pts = mesh.map_points(np.arange(mesh.n_elements), ref.vol_points)
    num = np.einsum("qb,ebn->eqn", ref.V, solver.Q)
    ex = exact_fn(pts.reshape(-1, 3), t).reshape(num.shape)
    return float(
        np.sqrt(np.einsum("e,q,eqn->", mesh.det_jac, ref.vol_weights, (num - ex) ** 2))
    )
