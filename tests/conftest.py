"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.materials import acoustic, elastic


@pytest.fixture
def rock():
    """Generic crustal rock (cp=6000, cs=3464, rho=2700)."""
    return elastic(2700.0, 6000.0, 3464.0)


@pytest.fixture
def water():
    """Standard ocean water (c=1500, rho=1000)."""
    return acoustic(1000.0, 1500.0)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def l2_error(solver, exact_fn, t):
    """Global L2 error of a CoupledSolver state against ``exact_fn(x, t)``."""
    ref = solver.op.ref
    mesh = solver.mesh
    pts = mesh.map_points(np.arange(mesh.n_elements), ref.vol_points)
    num = np.einsum("qb,ebn->eqn", ref.V, solver.Q)
    ex = exact_fn(pts.reshape(-1, 3), t).reshape(num.shape)
    return float(
        np.sqrt(np.einsum("e,q,eqn->", mesh.det_jac, ref.vol_weights, (num - ex) ** 2))
    )
