"""Unit tests for the CFL condition and the spatial-operator kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ader import taylor_integrate
from repro.core.cfl import cfl_factor, element_timesteps
from repro.core.kernels import SpatialOperator
from repro.core.materials import acoustic, elastic
from repro.mesh.generators import box_mesh, layered_ocean_mesh

ROCK = elastic(2700.0, 6000.0, 3464.0)
WATER = acoustic(1000.0, 1500.0)


class TestCFL:
    def test_paper_constant(self):
        """Sec. 6: C(N) = 0.35 / (2N + 1)."""
        assert np.isclose(cfl_factor(5), 0.35 / 11.0)
        assert np.isclose(cfl_factor(0), 0.35)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            cfl_factor(-1)
        with pytest.raises(ValueError):
            cfl_factor(2, safety=0.0)

    def test_timestep_scales_with_wave_speed(self):
        xs = np.linspace(0, 1000.0, 3)
        m_fast = box_mesh(xs, xs, xs, [ROCK])
        m_slow = box_mesh(xs, xs, xs, [elastic(2700.0, 3000.0, 1732.0)])
        assert np.allclose(
            element_timesteps(m_slow, 2), 2.0 * element_timesteps(m_fast, 2)
        )

    @given(st.integers(min_value=0, max_value=6))
    @settings(max_examples=7, deadline=None)
    def test_higher_order_smaller_dt(self, order):
        xs = np.linspace(0, 1000.0, 3)
        m = box_mesh(xs, xs, xs, [ROCK])
        dt = element_timesteps(m, order)
        dt_next = element_timesteps(m, order + 1)
        assert (dt_next < dt).all()

    def test_acoustic_uses_sound_speed(self):
        xs = np.linspace(0, 1000.0, 3)
        m = box_mesh(xs, xs, xs, [WATER])
        dt = element_timesteps(m, 2)
        m2 = box_mesh(xs, xs, xs, [ROCK])
        # water cp = rock cp / 4 -> dt 4x bigger
        assert np.allclose(dt, 4.0 * element_timesteps(m2, 2))


class TestSpatialOperator:
    def make(self, order=2):
        xs = np.linspace(0, 2000.0, 4)
        m = layered_ocean_mesh(
            xs, xs, np.linspace(-2000.0, -500.0, 3), np.linspace(-500.0, 0.0, 2), ROCK, WATER
        )
        return SpatialOperator(m, order)

    def test_constant_state_is_steady(self):
        """A constant velocity field is steady: the volume term cancels the
        surface fluxes exactly (free-stream preservation, including the
        coupled elastic-acoustic faces and the free-surface closure)."""
        op = self.make()
        Q = op.new_state()
        Q[:, 0, 7] = 1.0  # constant vy everywhere
        derivs = op.predict(Q)
        I = taylor_integrate(derivs, 0.0, 1e-3)
        out = op.apply(I)
        scale = 1e-3 * ROCK.lam
        assert np.abs(out).max() < 1e-12 * scale

    def test_masked_residual_matches_full(self):
        """active-mask kernels must agree with the unmasked computation on
        the selected elements (the LTS contract)."""
        op = self.make()
        rng = np.random.default_rng(0)
        Q = rng.normal(size=(op.n_elements, op.nbasis, 9))
        derivs = op.predict(Q)
        I = taylor_integrate(derivs, 0.0, 1e-4)
        full = op.new_state()
        op.volume_residual(I, full)
        op.interior_residual(I, full)
        op.boundary_residual(I, full)
        mask = np.zeros(op.n_elements, dtype=bool)
        mask[::3] = True
        part = op.new_state()
        op.volume_residual(I, part, active=mask)
        op.interior_residual(I, part, active=mask)
        op.boundary_residual(I, part, active=mask)
        assert np.allclose(part[mask], full[mask], rtol=1e-12, atol=1e-14)
        assert np.abs(part[~mask]).max() == 0.0

    def test_apply_is_sum_of_parts(self):
        op = self.make()
        rng = np.random.default_rng(1)
        Q = rng.normal(size=(op.n_elements, op.nbasis, 9))
        I = taylor_integrate(op.predict(Q), 0.0, 1e-4)
        total = op.apply(I)
        parts = op.new_state()
        op.volume_residual(I, parts)
        op.interior_residual(I, parts)
        op.boundary_residual(I, parts)
        assert np.allclose(total, parts)

    def test_face_groups_partition_faces(self):
        op = self.make()
        counted = sum(len(g.face_ids) for g in op.interior_groups)
        regular = int((~op.mesh.interior.is_fault).sum())
        assert counted == regular

    def test_trace_minus_constant_field(self):
        op = self.make()
        Q = op.new_state()
        Q[:, 0, 8] = 2.0 / np.sqrt(6.0)  # vz = 2 (constant mode is sqrt(6))
        ids = np.arange(min(5, len(op.mesh.boundary)))
        tr = op.trace_minus(ids, Q, boundary=True)
        assert np.allclose(tr[:, :, 8], 2.0)
        assert np.allclose(tr[:, :, :8], 0.0, atol=1e-14)
