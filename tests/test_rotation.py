"""Tests for the T(n) similarity transforms (paper Eq. 15)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.materials import acoustic, elastic, jacobian_normal, jacobians
from repro.core.rotation import (
    batched_normal_basis,
    batched_state_rotation,
    bond_matrix,
    normal_basis,
    state_rotation,
    state_rotation_inverse,
)


from .conftest import random_material, random_unit_vector


def random_unit(seed):
    rng = np.random.default_rng(seed)
    n = rng.normal(size=3)
    return n / np.linalg.norm(n)


class TestNormalBasis:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_orthonormal_right_handed(self, seed):
        n = random_unit(seed)
        R = normal_basis(n)
        assert np.allclose(R.T @ R, np.eye(3), atol=1e-13)
        assert np.isclose(np.linalg.det(R), 1.0)
        assert np.allclose(R[:, 0], n)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            normal_basis(np.zeros(3))

    def test_batched_matches_single(self):
        normals = np.array([random_unit(s) for s in range(10)])
        Rb = batched_normal_basis(normals)
        for i, n in enumerate(normals):
            assert np.allclose(Rb[i], normal_basis(n), atol=1e-14)


class TestBond:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_transforms_stress_correctly(self, seed):
        rng = np.random.default_rng(seed)
        R = normal_basis(random_unit(seed))
        s = rng.normal(size=(3, 3))
        s = s + s.T
        voigt = np.array([s[0, 0], s[1, 1], s[2, 2], s[0, 1], s[1, 2], s[0, 2]])
        rot = R @ s @ R.T
        voigt_rot = bond_matrix(R) @ voigt
        expect = np.array([rot[0, 0], rot[1, 1], rot[2, 2], rot[0, 1], rot[1, 2], rot[0, 2]])
        assert np.allclose(voigt_rot, expect, atol=1e-12)

    def test_identity(self):
        assert np.allclose(bond_matrix(np.eye(3)), np.eye(6))


class TestStateRotation:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_similarity_identity_elastic(self, seed):
        """T(n) A T(n)^-1 == nx A + ny B + nz C (paper Eq. 15)."""
        mat = elastic(2700.0, 6000.0, 3464.0)
        n = random_unit(seed)
        A = jacobians(mat)[0]
        lhs = state_rotation(n) @ A @ state_rotation_inverse(n)
        rhs = jacobian_normal(mat, n)
        assert np.abs(lhs - rhs).max() < 1e-9 * np.abs(rhs).max()

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_similarity_identity_acoustic(self, seed):
        mat = acoustic(1000.0, 1500.0)
        n = random_unit(seed)
        A = jacobians(mat)[0]
        lhs = state_rotation(n) @ A @ state_rotation_inverse(n)
        assert np.abs(lhs - jacobian_normal(mat, n)).max() < 1e-9 * mat.lam

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_inverse(self, seed):
        n = random_unit(seed)
        assert np.allclose(
            state_rotation(n) @ state_rotation_inverse(n), np.eye(9), atol=1e-12
        )

    def test_batched_matches_single(self):
        normals = np.array([random_unit(s) for s in range(7)])
        T, Tinv = batched_state_rotation(normals)
        for i, n in enumerate(normals):
            assert np.allclose(T[i], state_rotation(n), atol=1e-13)
            assert np.allclose(Tinv[i], state_rotation_inverse(n), atol=1e-13)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_similarity_identity_random_materials(self, seed):
        """Eq. 15 holds for any admissible material, not just the fixtures:
        T(n) A T(n)^-1 == nx A + ny B + nz C."""
        rng = np.random.default_rng(seed)
        mat = random_material(rng)
        n = random_unit_vector(rng)
        A = jacobians(mat)[0]
        lhs = state_rotation(n) @ A @ state_rotation_inverse(n)
        rhs = jacobian_normal(mat, n)
        assert np.abs(lhs - rhs).max() < 1e-9 * max(np.abs(rhs).max(), mat.lam)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_block_structure(self, seed):
        """T(n) is exactly blockdiag(bond(R), R) with R = normal_basis(n),
        and its inverse is the same construction from R^T."""
        rng = np.random.default_rng(seed)
        n = random_unit_vector(rng)
        R = normal_basis(n)

        def blockdiag(Rm):
            T = np.zeros((9, 9))
            T[:6, :6] = bond_matrix(Rm)
            T[6:, 6:] = Rm
            return T

        assert np.allclose(state_rotation(n), blockdiag(R), atol=1e-13)
        assert np.allclose(state_rotation_inverse(n), blockdiag(R.T), atol=1e-13)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_rotation_preserves_energy_norm(self, seed):
        """The velocity block is orthogonal: kinetic energy density is
        frame-independent under T(n)."""
        rng = np.random.default_rng(seed)
        n = random_unit_vector(rng)
        q = rng.normal(size=9)
        v_rot = (state_rotation(n) @ q)[6:]
        assert np.isclose(v_rot @ v_rot, q[6:] @ q[6:], rtol=1e-12)
