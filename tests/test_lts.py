"""Tests for clustered rate-2 local time-stepping (paper Sec. 4.4)."""

import numpy as np

from repro.core.lts import LocalTimeStepping, cluster_elements, lts_statistics
from repro.core.materials import acoustic, elastic
from repro.core.riemann import FaceKind
from repro.core.solver import CoupledSolver
from repro.mesh.generators import box_mesh, layered_ocean_mesh

ROCK1 = elastic(1.0, 2.0, 1.0)


def graded_periodic_box(order=2):
    xs = np.unique(np.concatenate([np.linspace(0, 1, 5), np.linspace(0.5 - 1 / 32, 0.5 + 1 / 32, 3)]))
    ys = np.linspace(0, 1, 5)
    m = box_mesh(xs, ys, ys, [ROCK1])
    for vec in np.eye(3):
        m.glue_periodic(vec * 1.0)
    return m


class TestClustering:
    def test_normalization_neighbor_constraint(self):
        m = graded_periodic_box()
        cl, dt_min = cluster_elements(m, 2)
        em, ep = m.interior.minus_elem, m.interior.plus_elem
        assert np.abs(cl[em] - cl[ep]).max() <= 1
        assert dt_min > 0
        assert cl.min() == 0

    def test_uniform_mesh_single_cluster(self):
        xs = np.linspace(0, 1, 4)
        m = box_mesh(xs, xs, xs, [ROCK1])
        cl, _ = cluster_elements(m, 2)
        assert cl.max() == 0

    def test_material_contrast_splits_clusters(self):
        """Ocean (slow) over rock (fast): wave-speed contrast drives LTS,
        the acoustic layer getting the larger timestep (paper Sec. 4.4)."""
        water = acoustic(1000.0, 1500.0)
        rock = elastic(2700.0, 6000.0, 3464.0)
        xs = np.linspace(0, 4000.0, 5)
        m = layered_ocean_mesh(
            xs, xs, np.linspace(-3000.0, -1000.0, 3), np.linspace(-1000.0, 0.0, 3), rock, water
        )
        cl, _ = cluster_elements(m, 2)
        ac = m.is_acoustic_elem
        # same element size, cp ratio 4 => acoustic elements 2 clusters higher
        assert cl[ac].max() > cl[~ac].min()

    def test_max_cluster_cap(self):
        m = graded_periodic_box()
        cl, _ = cluster_elements(m, 2, max_cluster=0)
        assert cl.max() == 0

    def test_fault_faces_share_cluster(self):
        xs = np.unique(np.concatenate([np.linspace(0, 1, 3), [0.5 - 1 / 16, 0.5 + 1 / 16]]))
        ys = np.linspace(0, 1, 3)
        m = box_mesh(xs, ys, ys, [ROCK1])
        n = m.mark_fault(
            lambda c, nrm: (np.abs(nrm[:, 0]) > 0.99) & (np.abs(c[:, 0] - 0.5) < 1e-9)
        )
        assert n > 0
        cl, _ = cluster_elements(m, 2)
        f = m.interior.is_fault
        assert (cl[m.interior.minus_elem[f]] == cl[m.interior.plus_elem[f]]).all()


class TestStatistics:
    def test_counts_and_speedup(self):
        cl = np.array([0] * 10 + [1] * 20 + [2] * 70)
        st = lts_statistics(cl)
        assert list(st["counts"]) == [10, 20, 70]
        # GTS: 100 elements * 4 substeps; LTS: 10*4 + 20*2 + 70*1 = 150
        assert st["updates_gts"] == 400
        assert st["updates_lts"] == 150
        assert np.isclose(st["speedup"], 400 / 150)

    def test_single_cluster_speedup_one(self):
        st = lts_statistics(np.zeros(5, dtype=int))
        assert st["speedup"] == 1.0


class TestLTSDriver:
    def test_matches_gts_on_plane_wave(self):
        k = 2 * np.pi
        cp = ROCK1.cp
        r = np.array([ROCK1.lam + 2 * ROCK1.mu, ROCK1.lam, ROCK1.lam, 0, 0, 0, -cp, 0, 0])

        def exact(x, t):
            return r[None, :] * np.sin(k * (x[:, 0] - cp * t))[:, None]

        T = 0.1 / cp
        s_gts = CoupledSolver(graded_periodic_box(), order=2)
        s_gts.set_initial_condition(lambda x: exact(x, 0.0))
        n = int(np.ceil(T / s_gts.dt))
        for _ in range(n):
            s_gts.step(T / n)

        s_lts = CoupledSolver(graded_periodic_box(), order=2)
        s_lts.set_initial_condition(lambda x: exact(x, 0.0))
        lts = LocalTimeStepping(s_lts)
        assert lts.n_clusters >= 2
        lts.run(T)

        rel = np.abs(s_gts.Q - s_lts.Q).max() / np.abs(s_gts.Q).max()
        assert rel < 5e-3
        assert np.isclose(s_lts.t, T)

    def test_update_counts_follow_rate(self):
        s = CoupledSolver(graded_periodic_box(), order=1)
        s.set_initial_condition(lambda x: np.zeros((len(x), 9)))
        lts = LocalTimeStepping(s)
        lts.run(8 * lts.dt_min * 2**lts.cmax / 8)  # one macro step
        for c in range(lts.n_clusters):
            assert lts.updates[c] == 2 ** (lts.cmax - c)

    def test_gravity_with_lts_matches_gts(self):
        """Coupled ocean-earth with gravity surface: LTS == GTS (within
        high-order accuracy)."""
        water = acoustic(1000.0, 1500.0)
        rock = elastic(2700.0, 6000.0, 3464.0)
        xs = np.linspace(0, 2000.0, 3)
        ys = np.linspace(0, 1000.0, 2)

        def build():
            m = layered_ocean_mesh(
                xs, ys, np.linspace(-2000.0, -500.0, 3), np.linspace(-500.0, 0.0, 2), rock, water
            )
            m.glue_periodic(np.array([2000.0, 0, 0]))
            m.glue_periodic(np.array([0, 1000.0, 0]))

            def tagger(cent, nrm):
                tags = np.full(len(cent), FaceKind.WALL.value)
                tags[nrm[:, 2] > 0.99] = FaceKind.GRAVITY_FREE_SURFACE.value
                return tags

            m.tag_boundary(tagger)
            return m

        def ic(x):
            out = np.zeros((len(x), 9))
            out[:, 8] = 0.1 * np.exp(-((x[:, 2] + 800.0) ** 2) / (2 * 200.0**2))
            return out

        s_gts = CoupledSolver(build(), order=2)
        s_gts.set_initial_condition(ic)
        T = 30 * s_gts.dt
        n = int(np.ceil(T / s_gts.dt))
        for _ in range(n):
            s_gts.step(T / n)

        s_lts = CoupledSolver(build(), order=2)
        s_lts.set_initial_condition(ic)
        lts = LocalTimeStepping(s_lts)
        assert lts.n_clusters >= 2
        lts.run(T)

        # the cluster boundary coincides with the (marginally resolved)
        # material interface here, so the two discretizations differ at the
        # few-per-mille level; pure-material cases agree to ~1e-4
        scale = np.abs(s_gts.Q).max()
        assert np.abs(s_gts.Q - s_lts.Q).max() < 8e-3 * scale
        # eta in this very early transient (~1e-4 m) is strongly
        # timestep-sensitive even for pure GTS (GTS at the ocean-cluster dt
        # deviates by the same ~30% from a fine-dt reference as LTS does);
        # the dispersion test in test_gravity.py covers eta accuracy.
        deta = np.abs(s_gts.gravity.eta - s_lts.gravity.eta).max()
        assert deta < 0.5 * np.abs(s_gts.gravity.eta).max()
        # and the sea surface moved the same direction everywhere coherent
        corr = np.corrcoef(s_gts.gravity.eta.ravel(), s_lts.gravity.eta.ravel())[0, 1]
        assert corr > 0.99

    def test_final_time_not_multiple_of_macro(self):
        s = CoupledSolver(graded_periodic_box(), order=1)
        s.set_initial_condition(lambda x: np.zeros((len(x), 9)))
        lts = LocalTimeStepping(s)
        T = 3.7 * lts.dt_min
        lts.run(T)
        assert np.isclose(s.t, T)
