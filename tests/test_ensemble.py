"""Fault-tolerant ensemble driver: supervision, retry ladder, chaos.

The fast tier exercises the retry policy, the spec registry/pickling
contract, the worker's result publishing, and the supervisor's degraded
in-process mode (where injected kill/hang faults raise instead of
killing the test runner).  The ``slow`` tier is the chaos matrix across
real spawned processes: kill -9, hangs, corrupt result files, and
persistent failures driving quarantine — asserting the driver never
crashes and every recovered member is *bitwise identical* to its
uninterrupted twin.
"""

import json
import os
import pickle

import pytest

from repro.core.health.inject import (
    FaultInjector,
    InjectedHang,
    InjectedWorkerDeath,
)
from repro.ensemble import (
    EnsembleResult,
    MemberSpec,
    RetryPolicy,
    Supervisor,
    available_builders,
    get_builder,
    load_result,
    run_member,
    state_digest,
)
from repro.ensemble.worker import RESULT_NAME
from repro.obs.blackbox import BUNDLE_SUFFIX, classify_bundle, load_bundle
from repro.obs.runlog import validate_jsonl

#: smallest useful member: 27-element coupled mesh, ~25 steps
TINY = dict(builder="quickstart", perturb={"n_x": 4}, t_end=0.12,
            checkpoint_every=0.03)


def tiny_spec(member_id="m0", seed=7, **over):
    kw = {**TINY, **over}
    return MemberSpec(member_id=member_id, seed=seed, **kw)


# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_deterministic_per_seed_and_strike(self):
        pol = RetryPolicy()
        a = pol.decide(2, seed=11)
        b = pol.decide(2, seed=11)
        assert a == b
        assert pol.decide(2, seed=12).delay_s != a.delay_s

    def test_backoff_grows_and_caps(self):
        pol = RetryPolicy(max_retries=20, backoff_base=0.5, jitter=0.0,
                          max_delay_s=4.0)
        delays = [pol.decide(s, seed=0).delay_s for s in range(1, 8)]
        assert delays == sorted(delays)
        assert delays[0] == pytest.approx(0.5)
        assert delays[-1] == 4.0

    def test_escalation_ladder(self):
        pol = RetryPolicy(max_retries=4, dt_scale_after=2, dt_backoff=0.5)
        # strike 1: resume, but full dt — keeps single-fault recoveries
        # bitwise identical to the uninterrupted run
        d1 = pol.decide(1, seed=0)
        assert d1.retry and d1.resume and d1.dt_scale == 1.0
        # strikes 2..: dt backs off geometrically
        assert pol.decide(2, seed=0).dt_scale == 0.5
        assert pol.decide(3, seed=0).dt_scale == 0.25
        # past the budget: no retry, quarantine
        assert not pol.decide(5, seed=0).retry

    def test_dt_scale_floor(self):
        pol = RetryPolicy(max_retries=50, min_dt_scale=0.25)
        assert pol.decide(40, seed=0).dt_scale == 0.25

    def test_jitter_bounded(self):
        pol = RetryPolicy(backoff_base=1.0, backoff_factor=1.0, jitter=0.25,
                          max_delay_s=100.0)
        for seed in range(20):
            d = pol.decide(1, seed=seed).delay_s
            assert 1.0 <= d <= 1.25


class TestSpecRegistry:
    def test_builtin_builders_registered(self):
        names = available_builders()
        for expected in ("quickstart", "scenario_a", "palu"):
            assert expected in names

    def test_unknown_builder_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario builder"):
            get_builder("no_such_scenario")
        with pytest.raises(KeyError):
            tiny_spec(builder="no_such_scenario").build()

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="member_id"):
            MemberSpec(member_id="")
        with pytest.raises(ValueError, match="t_end"):
            MemberSpec(member_id="x", t_end=0.0)

    def test_spec_pickles_with_injector(self):
        # the spawn boundary: specs cross by value, builders by name
        spec = tiny_spec(injector=FaultInjector().kill_process(at_step=5))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.member_id == spec.member_id
        assert clone.builder == spec.builder
        assert clone.injector is not None
        assert clone.without_injector().injector is None
        clone.build()  # registry resolves after the round trip

    def test_perturbation_changes_trajectory(self, tmp_path):
        base = run_member(tiny_spec(), str(tmp_path / "a"))
        moved = run_member(
            tiny_spec(perturb={"n_x": 4, "amp_jitter": 0.3}, seed=99),
            str(tmp_path / "b"),
        )
        assert base["digest"] != moved["digest"]


# ----------------------------------------------------------------------
class TestWorker:
    def test_inline_run_reproducible(self, tmp_path):
        r1 = run_member(tiny_spec(), str(tmp_path / "a"))
        r2 = run_member(tiny_spec(), str(tmp_path / "b"))
        assert r1["status"] == "completed"
        assert r1["digest"] == r2["digest"]
        assert r1["sim_t"] == pytest.approx(TINY["t_end"])

    def test_digest_matches_direct_solver_run(self, tmp_path):
        # comparable to a bare solver.run only without mid-run checkpoint
        # segments (segment boundaries clamp dt exactly like t_end does)
        spec = tiny_spec(checkpoint_every=None)
        result = run_member(spec, str(tmp_path / "m"))
        handle = spec.build()
        handle.solver.run(spec.t_end)
        assert result["digest"] == state_digest(handle.solver, handle.lts)

    def test_result_file_published_and_valid(self, tmp_path):
        result = run_member(tiny_spec(), str(tmp_path / "m"))
        on_disk = load_result(result["paths"]["result"])
        assert on_disk is not None
        assert on_disk["digest"] == result["digest"]
        assert on_disk["attempt"] == 1
        # durable member run log survives validation, heartbeats included
        report = validate_jsonl(result["paths"]["runlog"])
        assert not report["errors"], report["errors"]
        assert report["events"].get("heartbeat", 0) >= 1

    def test_load_result_rejects_garbage(self, tmp_path):
        path = str(tmp_path / RESULT_NAME)
        assert load_result(path) is None  # missing
        with open(path, "w") as f:
            f.write('{"member_id": "x", "truncat')
        assert load_result(path) is None  # torn
        with open(path, "w") as f:
            json.dump({"member_id": "x"}, f)
        assert load_result(path) is None  # missing required keys

    def test_injected_corrupt_result_is_unreadable(self, tmp_path):
        spec = tiny_spec(injector=FaultInjector().corrupt_result(on_attempt=1))
        result = run_member(spec, str(tmp_path / "m"))
        assert load_result(result["paths"]["result"]) is None


# ----------------------------------------------------------------------
class TestSupervisorInProcess:
    """Degraded (workers=0) mode: same ladder, simulated process faults."""

    def run_ensemble(self, specs, tmp_path, **kw):
        kw.setdefault("retry", RetryPolicy(max_retries=2, backoff_base=0.01,
                                           max_delay_s=0.02))
        sup = Supervisor(specs, workers=0, out_dir=str(tmp_path), **kw)
        return sup.run()

    def test_clean_ensemble_all_ok(self, tmp_path):
        specs = [tiny_spec(f"m{k}", seed=k) for k in range(2)]
        result = self.run_ensemble(specs, tmp_path)
        assert result.counts == {"ok": 2, "recovered": 0, "quarantined": 0}
        assert not result.degraded
        for m in result.members:
            assert m.attempts == 1 and m.digest

    def test_simulated_kill_recovers_bitwise(self, tmp_path):
        spec = tiny_spec(injector=FaultInjector().kill_process(at_step=10))
        result = self.run_ensemble([spec], tmp_path / "chaos")
        twin = run_member(spec.without_injector(), str(tmp_path / "twin"))
        m = result.members[0]
        assert m.status == "recovered"
        assert m.attempts == 2
        assert m.dt_scale == 1.0  # first retry must not perturb physics
        assert m.digest == twin["digest"]
        assert "killed (simulated)" in m.history[0]["reason"]

    def test_simulated_hang_recovers(self, tmp_path):
        spec = tiny_spec(injector=FaultInjector().hang(at_step=8))
        result = self.run_ensemble([spec], tmp_path)
        m = result.members[0]
        assert m.status == "recovered"
        assert "heartbeat_timeout (simulated)" in m.history[0]["reason"]

    def test_corrupt_result_harmless_in_process(self, tmp_path):
        # without a process boundary the supervisor consumes the in-memory
        # result, so a torn result *file* cannot fail the attempt — that
        # failure mode only exists (and is chaos-tested) across spawn
        spec = tiny_spec(injector=FaultInjector().corrupt_result(on_attempt=1))
        result = self.run_ensemble([spec], tmp_path / "chaos")
        m = result.members[0]
        assert m.status == "ok"
        assert load_result(m.paths["result"]) is None  # file IS torn

    def test_persistent_kill_quarantines_with_diagnosis(self, tmp_path):
        spec = tiny_spec(injector=FaultInjector().kill_process(
            at_step=10, persistent=True))
        result = self.run_ensemble([spec], tmp_path)
        m = result.members[0]
        assert m.status == "quarantined"
        assert m.attempts == 3  # initial + max_retries=2
        assert len(m.history) == 3
        # the diagnosis leads with the classifier verdict, not free text
        assert "worker_death after 3 attempt(s)" in m.diagnosis
        assert m.verdict == "worker_death"
        assert result.degraded

    def test_recovered_member_drops_stale_bundle(self, tmp_path):
        # a member that recovers on retry must NOT carry the failed
        # attempt's bundle forward — the per-attempt dumps stay in its
        # history entries, but verdict/bundle on the result are clean
        spec = tiny_spec(injector=FaultInjector().kill_process(at_step=10))
        result = self.run_ensemble([spec], tmp_path)
        m = result.members[0]
        assert m.status == "recovered"
        assert m.verdict is None
        assert m.bundle is None
        assert m.history[0]["bundle"]
        assert m.history[0]["bundle"].endswith(BUNDLE_SUFFIX)
        assert m.history[0]["verdict"] == "worker_death"
        # the published result file round-trips the same contract
        loaded = EnsembleResult.load(os.path.join(str(tmp_path),
                                                  "ensemble.json"))
        lm = loaded.member("m0")
        assert lm.verdict is None and lm.bundle is None
        assert lm.history[0]["verdict"] == "worker_death"

    def test_persistent_nan_quarantines_as_nan_origin(self, tmp_path):
        # a diverging member's quarantine record carries the flight
        # recorder's verdict and a bundle path that localizes the NaN
        spec = tiny_spec(max_retries=0, injector=FaultInjector()
                         .corrupt_state(3, persistent=True))
        result = self.run_ensemble([spec], tmp_path)
        m = result.members[0]
        assert m.status == "quarantined"
        assert m.verdict == "nan_origin"
        assert m.diagnosis.startswith("nan_origin after 3 attempt(s)")
        assert m.bundle and os.path.isfile(m.bundle)
        doc = load_bundle(m.bundle)
        verdict = classify_bundle(doc)
        assert verdict["verdict"] == "nan_origin"
        # attempt-scoped attribution: the quarantine bundle belongs to
        # the final attempt, not a stale dump from an earlier one
        assert (doc.get("context") or {}).get("attempt") == m.attempts
        assert all(h["verdict"] == "nan_origin" for h in m.history)
        assert all(h["bundle"] for h in m.history)

    def test_quarantine_events_carry_verdict_and_bundle(self, tmp_path):
        spec = tiny_spec(max_retries=0, injector=FaultInjector()
                         .corrupt_state(3, persistent=True))
        self.run_ensemble([spec], tmp_path)
        log_path = os.path.join(str(tmp_path), "ensemble.jsonl")
        report = validate_jsonl(log_path)
        assert not report["errors"], report["errors"]
        with open(log_path, encoding="utf-8") as f:
            records = [json.loads(line) for line in f if line.strip()]
        retries = [r for r in records if r["event"] == "member_retry"]
        quars = [r for r in records if r["event"] == "member_quarantined"]
        assert retries and quars
        for r in retries + quars:
            assert r["verdict"] == "nan_origin"
            assert r["bundle"] and r["bundle"].endswith(BUNDLE_SUFFIX)

    def test_persistent_hang_quarantines_as_worker_death(self, tmp_path):
        spec = tiny_spec(injector=FaultInjector().hang(at_step=8,
                                                       persistent=True))
        result = self.run_ensemble([spec], tmp_path)
        m = result.members[0]
        assert m.status == "quarantined"
        assert m.verdict == "worker_death"
        assert m.bundle and os.path.isfile(m.bundle)
        assert classify_bundle(load_bundle(m.bundle))["verdict"] == \
            "worker_death"

    def test_fleet_survives_one_bad_member(self, tmp_path):
        specs = [
            tiny_spec("good", seed=1),
            tiny_spec("bad", seed=2, injector=FaultInjector().kill_process(
                at_step=5, persistent=True)),
        ]
        result = self.run_ensemble(specs, tmp_path)
        assert result.member("good").status == "ok"
        assert result.member("bad").status == "quarantined"

    def test_supervisor_events_logged_and_valid(self, tmp_path):
        spec = tiny_spec(injector=FaultInjector().kill_process(at_step=10))
        self.run_ensemble([spec], tmp_path)
        report = validate_jsonl(os.path.join(str(tmp_path), "ensemble.jsonl"))
        assert not report["errors"], report["errors"]
        ev = report["events"]
        assert ev["member_start"] == 2
        assert ev["member_retry"] == 1
        assert ev["member_end"] == 1
        assert ev["ensemble_summary"] == 1

    def test_ensemble_result_round_trips(self, tmp_path):
        spec = tiny_spec()
        self.run_ensemble([spec], tmp_path)
        loaded = EnsembleResult.load(os.path.join(str(tmp_path),
                                                  "ensemble.json"))
        assert loaded.counts["ok"] == 1
        assert loaded.member("m0").digest

    def test_duplicate_member_ids_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unique"):
            Supervisor([tiny_spec("x"), tiny_spec("x")],
                       out_dir=str(tmp_path))


class TestSimulatedFaultPlumbing:
    def test_kill_raises_only_in_simulate_mode(self):
        inj = FaultInjector().kill_process(at_step=3)
        inj.process_gate(2, attempt=1, simulate=True)  # not due yet
        with pytest.raises(InjectedWorkerDeath):
            inj.process_gate(3, attempt=1, simulate=True)
        inj2 = FaultInjector().hang(at_step=3)
        with pytest.raises(InjectedHang):
            inj2.process_gate(3, attempt=1, simulate=True)

    def test_attempt_scoping(self):
        # one-shot faults are scoped to a process incarnation: a respawned
        # attempt gets a freshly unpickled injector, so `fired` cannot
        # carry over — on_attempt is what prevents an infinite kill loop
        inj = pickle.loads(pickle.dumps(
            FaultInjector().kill_process(at_step=3, on_attempt=1)))
        inj.process_gate(3, attempt=2, simulate=True)  # wrong attempt: quiet
        inj_p = FaultInjector().kill_process(at_step=3, persistent=True)
        for attempt in (1, 2, 3):
            fresh = pickle.loads(pickle.dumps(inj_p))
            with pytest.raises(InjectedWorkerDeath):
                fresh.process_gate(3, attempt=attempt, simulate=True)

    def test_result_gate_consumes_action(self):
        inj = FaultInjector().corrupt_result(on_attempt=2)
        assert not inj.result_gate(attempt=1)
        assert inj.result_gate(attempt=2)
        assert not inj.result_gate(attempt=2)  # one-shot


# ----------------------------------------------------------------------
@pytest.mark.slow
class TestSupervisorMultiprocess:
    """The chaos matrix over real spawned worker processes."""

    RETRY = RetryPolicy(max_retries=2, backoff_base=0.05, max_delay_s=0.2)

    def run_ensemble(self, specs, out_dir, **kw):
        kw.setdefault("retry", self.RETRY)
        kw.setdefault("member_timeout", 60.0)
        sup = Supervisor(specs, workers=kw.pop("workers", 2),
                         out_dir=str(out_dir), **kw)
        return sup.run()

    def test_clean_ensemble_matches_inline(self, tmp_path):
        specs = [tiny_spec(f"m{k}", seed=k) for k in range(2)]
        result = self.run_ensemble(specs, tmp_path / "ens")
        assert result.counts == {"ok": 2, "recovered": 0, "quarantined": 0}
        for k, m in enumerate(result.members):
            twin = run_member(specs[k], str(tmp_path / f"twin{k}"))
            assert m.digest == twin["digest"], m.member_id

    def test_kill9_recovers_bitwise(self, tmp_path):
        spec = tiny_spec(injector=FaultInjector().kill_process(
            at_step=10, on_attempt=1))
        result = self.run_ensemble([spec], tmp_path / "ens")
        twin = run_member(spec.without_injector(), str(tmp_path / "twin"))
        m = result.members[0]
        assert m.status == "recovered"
        assert m.attempts == 2
        assert m.digest == twin["digest"]
        assert "signal 9" in m.history[0]["reason"]

    def test_hang_detected_by_heartbeat_timeout(self, tmp_path):
        spec = tiny_spec(injector=FaultInjector().hang(at_step=8))
        result = self.run_ensemble([spec], tmp_path / "ens",
                                   member_timeout=3.0)
        twin = run_member(spec.without_injector(), str(tmp_path / "twin"))
        m = result.members[0]
        assert m.status == "recovered"
        assert m.digest == twin["digest"]
        assert "heartbeat_timeout" in m.history[0]["reason"]

    def test_corrupt_result_file_retries(self, tmp_path):
        spec = tiny_spec(injector=FaultInjector().corrupt_result(on_attempt=1))
        result = self.run_ensemble([spec], tmp_path / "ens")
        twin = run_member(spec.without_injector(), str(tmp_path / "twin"))
        m = result.members[0]
        assert m.status == "recovered"
        assert m.digest == twin["digest"]
        assert m.history[0]["reason"] == "corrupt_result"

    def test_persistent_kill_quarantined_with_history(self, tmp_path):
        spec = tiny_spec(injector=FaultInjector().kill_process(
            at_step=10, persistent=True))
        result = self.run_ensemble([spec], tmp_path / "ens")
        m = result.members[0]
        assert m.status == "quarantined"
        assert m.attempts == 3
        assert len(m.history) == 3
        assert all("signal 9" in h["reason"] for h in m.history)
        # a real kill -9 leaves no worker-side bundle: the supervisor
        # synthesizes one and the classifier reads the death marker
        assert "worker_death after 3 attempt(s)" in m.diagnosis
        assert m.verdict == "worker_death"
        assert m.bundle and os.path.isfile(m.bundle)
        # escalation recorded: the second strike already reduced dt
        # (the final entry is the quarantine decision itself, no retry)
        assert m.history[1]["dt_scale"] < 1.0

    def test_chaos_fleet_complete_result(self, tmp_path):
        """Mixed fleet: clean + killed + corrupt; the driver always
        terminates with one result per member and a valid event log."""
        specs = [
            tiny_spec("clean", seed=1),
            tiny_spec("killed", seed=2,
                      injector=FaultInjector().kill_process(at_step=10)),
            tiny_spec("torn", seed=3,
                      injector=FaultInjector().corrupt_result(on_attempt=1)),
        ]
        result = self.run_ensemble(specs, tmp_path / "ens", workers=3)
        assert len(result.members) == 3
        assert result.member("clean").status == "ok"
        assert result.member("killed").status == "recovered"
        assert result.member("torn").status == "recovered"
        for m in result.members:
            spec = next(s for s in specs if s.member_id == m.member_id)
            twin = run_member(spec.without_injector(),
                              str(tmp_path / f"twin_{m.member_id}"))
            assert m.digest == twin["digest"], m.member_id
        report = validate_jsonl(result.runlog_path)
        assert not report["errors"], report["errors"]
        assert report["events"]["ensemble_summary"] == 1


@pytest.mark.slow
class TestEnsembleCLI:
    def test_cli_clean_run(self, tmp_path):
        import subprocess
        import sys

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "ensemble", "--members", "2",
             "--workers", "2", "--t-end", "0.12", "--checkpoint-every",
             "0.04", "--out", str(tmp_path / "out")],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        loaded = EnsembleResult.load(str(tmp_path / "out" / "ensemble.json"))
        assert loaded.counts["ok"] == 2
