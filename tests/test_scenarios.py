"""Tests for the scenario builders (Scenario A and Palu).

These verify geometry, fault placement, boundary tagging and short-run
behaviour on miniature configurations; the full scaled scenarios run in
``benchmarks/``.
"""

import numpy as np

from repro.core.riemann import FaceKind
from repro.scenarios.palu import PaluConfig, build_coupled as build_palu
from repro.scenarios.palu import build_earthquake_only as build_palu_eq
from repro.scenarios.palu import palu_bathymetry
from repro.scenarios.scenario_a import (
    ScenarioAConfig,
    build_coupled as build_a,
    build_earthquake_only as build_a_eq,
)


def tiny_a_config():
    return ScenarioAConfig(
        x_extent=(-1500.0, 1500.0),
        y_extent=(-1200.0, 1200.0),
        dy=600.0,
        n_earth_layers=6,
        fault_length_y=900.0,
        order=1,
    )


def tiny_palu_config():
    return PaluConfig(
        x_extent=(-2400.0, 2400.0),
        y_extent=(-3000.0, 3000.0),
        dx_fine=600.0,
        dx_coarse=1200.0,
        n_earth_layers=4,
        earth_depth=2000.0,
        bay_length=2200.0,
        fault_y_extent=(-2400.0, 2400.0),
        nucleation_y=1600.0,
        nucleation_radius=700.0,
        order=1,
    )


class TestScenarioAGeometry:
    def test_fault_plane_dips_correctly(self):
        cfg = tiny_a_config()
        solver, fault = build_a(cfg)
        n_expected = cfg.fault_normal
        dots = np.abs(fault.normal @ n_expected)
        assert (dots > 0.999).all()
        # fault below the seafloor
        assert fault.points[:, :, 2].max() < cfg.seafloor_z

    def test_dz_matches_dip(self):
        cfg = tiny_a_config()
        assert np.isclose(cfg.dz, cfg.dx * np.tan(np.deg2rad(cfg.dip_deg)))

    def test_gravity_surface_present(self):
        cfg = tiny_a_config()
        solver, fault = build_a(cfg)
        assert len(solver.gravity) > 0
        ocean_frac = solver.mesh.is_acoustic_elem.mean()
        assert 0.05 < ocean_frac < 0.5

    def test_seafloor_strengthening(self):
        cfg = tiny_a_config()
        solver, fault = build_a(cfg)
        mu_s = np.asarray(fault.friction.mu_s)
        z = fault.points[:, :, 2]
        # strength grows towards the seafloor
        assert mu_s[z > z.mean()].mean() >= mu_s[z < z.mean()].mean()

    def test_rupture_produces_uplift(self):
        cfg = tiny_a_config()
        solver, fault = build_a(cfg)
        for _ in range(60):
            solver.step()
        assert fault.slip.max() > 0.05
        # thrust slip: hanging wall up-dip => positive seafloor/sea-surface
        # signal somewhere
        assert np.abs(solver.gravity.eta).max() > 1e-4

    def test_earthquake_only_variant(self):
        cfg = tiny_a_config()
        eq, fault, tracker = build_a_eq(cfg)
        assert not eq.mesh.is_acoustic_elem.any()
        assert len(tracker.face_ids) > 0
        bnd = eq.mesh.boundary
        top = bnd.kind == FaceKind.FREE_SURFACE.value
        assert np.allclose(bnd.centroid[top][:, 2], cfg.seafloor_z)


class TestPaluGeometry:
    def test_bathymetry_shape(self):
        cfg = tiny_palu_config()
        bathy = palu_bathymetry(cfg)
        # deepest in the bay center, shallow at the far shelf
        assert bathy(cfg.bay_x, 0.0) < -0.7 * cfg.bay_depth
        assert bathy(cfg.x_extent[0], cfg.y_extent[0]) > -2.5 * cfg.shelf_depth
        # bathtub: closes toward the head (-y)
        assert bathy(cfg.bay_x, cfg.y_extent[0]) > bathy(cfg.bay_x, 0.0)

    def test_fault_is_vertical_plane(self):
        cfg = tiny_palu_config()
        solver, fault = build_palu(cfg)
        assert (np.abs(np.abs(fault.normal[:, 0]) - 1.0) < 1e-9).all()
        assert np.allclose(fault.points[:, :, 0], cfg.fault_x, atol=1e-6)

    def test_fault_below_seafloor(self):
        cfg = tiny_palu_config()
        solver, fault = build_palu(cfg)
        bathy = palu_bathymetry(cfg)
        z = fault.points[:, :, 2]
        floor = bathy(fault.points[:, :, 0], fault.points[:, :, 1])
        assert (z < floor).all()

    def test_rake_has_normal_component(self):
        cfg = tiny_palu_config()
        solver, fault = build_palu(cfg)
        # projected shear magnitude: background everywhere, plus the
        # nucleation overstress inside the asperity
        tau_mag = np.sqrt(fault.tau_s0**2 + fault.tau_t0**2)
        assert np.isclose(tau_mag.min(), cfg.tau_strike, rtol=1e-6)
        assert np.isclose(tau_mag.max(), cfg.tau_strike + cfg.nucleation_tau, rtol=1e-6)
        # the rake's dip-slip part: shear has a z-component, i.e. both
        # tangential components are exercised somewhere on the fault
        assert np.abs(fault.tau_s0).max() > 0
        assert np.abs(fault.tau_t0).max() > 0

    def test_short_run_nucleates(self):
        cfg = tiny_palu_config()
        solver, fault = build_palu(cfg)
        from repro.core.lts import LocalTimeStepping

        lts = LocalTimeStepping(solver)
        lts.run(0.35)
        assert fault.peak_slip_rate.max() > 0.5
        assert np.abs(solver.gravity.eta).max() > 1e-4

    def test_earthquake_only_surface_follows_bathymetry(self):
        cfg = tiny_palu_config()
        eq, fault, tracker = build_palu_eq(cfg)
        bathy = palu_bathymetry(cfg)
        pts = tracker.points.reshape(-1, 3)
        # the mesh surface is piecewise linear, so mid-face quadrature
        # points deviate from the smooth bathymetry by up to the sagitta
        assert np.allclose(pts[:, 2], bathy(pts[:, 0], pts[:, 1]), atol=0.12 * cfg.bay_depth)

    def test_mesh_is_wet_everywhere(self):
        """Our coastline substitute: a thin wet shelf instead of dry land."""
        cfg = tiny_palu_config()
        solver, fault = build_palu(cfg)
        assert solver.mesh.is_acoustic_elem.sum() > 0
        assert len(solver.gravity) > 0
