"""Observability layer: telemetry, structured run logs, roofline report."""

import json
import threading
import time

import numpy as np
import pytest

from repro.core.health import SimulationDiverged
from repro.core.health.inject import FaultInjector
from repro.core.resilience import ResilientRunner
from repro.obs import (
    EVENT_FIELDS,
    ObsSession,
    RunLog,
    get_telemetry,
    run_manifest,
    timed,
    validate_jsonl,
)
from repro.obs.report import (
    lts_cluster_updates,
    phase_total,
    roofline_rows,
    worker_split,
)

from repro.core.materials import acoustic, elastic
from repro.core.solver import (
    CoupledSolver,
    PointSource,
    ocean_surface_gravity_tagger,
)
from repro.mesh.generators import layered_ocean_mesh


def build_coupled(order=2):
    """Small coupled Earth-ocean solver (same setup as test_resilience)."""
    crust = elastic(rho=2700.0, cp=4000.0, cs=2300.0)
    ocean = acoustic(rho=1000.0, cp=1500.0)
    xs = np.linspace(0.0, 2000.0, 4)
    mesh = layered_ocean_mesh(
        xs, xs,
        zs_earth=np.linspace(-1500.0, -500.0, 3),
        zs_ocean=np.linspace(-500.0, 0.0, 2),
        earth=crust, ocean=ocean,
    )
    mesh.tag_boundary(ocean_surface_gravity_tagger(mesh))
    solver = CoupledSolver(mesh, order=order)

    def ricker(t):
        a = (np.pi * 2.0 * (t - 0.3)) ** 2
        return (1.0 - 2.0 * a) * np.exp(-a)

    solver.add_source(
        PointSource([1000.0, 1000.0, -900.0], ricker,
                    moment=[5e12] * 3 + [0, 0, 0])
    )
    return solver


@pytest.fixture(autouse=True)
def _clean_telemetry():
    tel = get_telemetry()
    tel.disable()
    tel.reset()
    yield
    tel.disable()
    tel.reset()


# ----------------------------------------------------------------------
class TestTelemetry:
    def test_disabled_phase_is_shared_noop(self):
        tel = get_telemetry()
        assert tel.phase("a") is tel.phase("b")  # one shared null CM
        with tel.phase("a"):
            tel.count("c", 5)
            tel.add_time("t", 1.0)
        snap = tel.snapshot()
        assert snap["phases"] == {} and snap["counters"] == {}

    def test_nested_phases_record_hierarchical_paths(self):
        tel = get_telemetry()
        tel.enable()
        with tel.phase("step"):
            with tel.phase("predict"):
                pass
            with tel.phase("predict"):
                pass
        snap = tel.snapshot()["phases"]
        assert set(snap) == {"step", "step/predict"}
        assert snap["step/predict"]["calls"] == 2
        assert snap["step"]["calls"] == 1
        assert snap["step"]["seconds"] >= snap["step/predict"]["seconds"]
        # suffix aggregation finds the nested path
        assert phase_total(snap, "predict") == snap["step/predict"]["seconds"]

    def test_counters_and_add_time(self):
        tel = get_telemetry()
        tel.enable()
        tel.count("elem_updates/predictor", 10)
        tel.count("elem_updates/predictor", 32)
        tel.add_time("worker/p0/compute", 0.25)
        tel.add_time("worker/p0/compute", 0.75)
        assert tel.counter("elem_updates/predictor") == 42
        snap = tel.snapshot()
        assert snap["phases"]["worker/p0/compute"]["seconds"] == pytest.approx(1.0)
        assert snap["phases"]["worker/p0/compute"]["calls"] == 2

    def test_timed_decorator(self):
        tel = get_telemetry()
        tel.enable()

        @timed("decorated")
        def f(x):
            return x + 1

        assert f(1) == 2
        assert tel.snapshot()["phases"]["decorated"]["calls"] == 1

    def test_reset_keeps_enabled_flag(self):
        tel = get_telemetry()
        tel.enable()
        tel.count("x")
        tel.reset()
        assert tel.enabled
        assert tel.snapshot()["counters"] == {}

    def test_counter_read_takes_the_registry_lock(self):
        """Regression: ``counter()`` used to read ``_counters`` without
        ``_lock``, so a read racing the partitioned workers' ``count()``
        calls could observe torn state relative to ``snapshot()``."""
        tel = get_telemetry()
        tel.enable()

        acquisitions = []
        real_lock = tel._lock

        class RecordingLock:
            def __enter__(self):
                acquisitions.append(True)
                return real_lock.__enter__()

            def __exit__(self, *exc):
                return real_lock.__exit__(*exc)

        tel._lock = RecordingLock()
        try:
            tel.count("c", 2)
            acquisitions.clear()
            assert tel.counter("c") == 2
            assert acquisitions, "counter() must acquire the registry lock"
            assert tel.counter("never-set") == 0
        finally:
            tel._lock = real_lock

    def test_counter_reads_race_concurrent_increments(self):
        tel = get_telemetry()
        tel.enable()

        def bump():
            for _ in range(2000):
                tel.count("raced")

        reads = []

        def read():
            for _ in range(2000):
                reads.append(tel.counter("raced"))

        threads = [threading.Thread(target=bump) for _ in range(2)]
        threads.append(threading.Thread(target=read))
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tel.counter("raced") == 4000
        assert all(0 <= v <= 4000 for v in reads)
        assert reads == sorted(reads)  # monotonic counter, consistent reads

    def test_thread_safety(self):
        tel = get_telemetry()
        tel.enable()

        def work(i):
            for _ in range(1000):
                tel.count("shared")
                tel.add_time(f"worker/p{i}/compute", 1e-6)
                with tel.phase("kernels/volume"):
                    pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = tel.snapshot()
        assert tel.counter("shared") == 4000
        assert snap["phases"]["kernels/volume"]["calls"] == 4000
        assert len(worker_split(snap["phases"])) == 4

    def test_disabled_overhead_below_two_percent_of_step(self):
        """The acceptance bar: telemetry off must not tax the solver.

        Estimates the per-step cost of every disabled instrumentation
        site (one ``enabled`` check + null context manager each) and
        compares it against the measured per-step wall time.
        """
        solver = build_coupled(order=2)
        tel = get_telemetry()

        # how many phase/count sites fire per step: measure one enabled step
        tel.enable()
        solver.step()
        snap = tel.snapshot()
        tel.disable()
        tel.reset()
        sites = sum(c["calls"] for c in snap["phases"].values())
        sites += len(snap["counters"])  # upper bound on count() sites
        assert sites >= 5  # the step is actually instrumented

        # per-call cost of the disabled fast path
        n = 50_000
        t0 = time.perf_counter()
        for _ in range(n):
            with tel.phase("x"):
                pass
            tel.count("c", 3)
        per_call = (time.perf_counter() - t0) / n

        # measured step time with telemetry off
        t0 = time.perf_counter()
        for _ in range(3):
            solver.step()
        per_step = (time.perf_counter() - t0) / 3

        overhead = sites * per_call / per_step
        assert overhead < 0.02, (
            f"disabled telemetry costs {overhead * 100:.3f}% of a step "
            f"({sites} sites x {per_call * 1e9:.0f} ns)"
        )


# ----------------------------------------------------------------------
class TestInstrumentation:
    def test_serial_step_phases_and_counters(self):
        solver = build_coupled(order=2)
        tel = get_telemetry()
        tel.enable()
        solver.step()
        snap = tel.snapshot()
        ne = solver.mesh.n_elements
        assert snap["counters"]["elem_updates/predictor"] == ne
        assert snap["counters"]["elem_updates/corrector"] == ne
        # the operator's phase names are variant-dependent (the default
        # fused kernels report under kernels/*_fused)
        op = solver.op
        for leaf in ("predict", "corrector", op._phase_volume,
                     op._phase_interior, op._phase_boundary,
                     "gravity/ode"):
            assert phase_total(snap["phases"], leaf) > 0.0, leaf
        # kernels nest under the corrector under the step
        assert f"step/corrector/{op._phase_volume}" in snap["phases"]

    def test_partitioned_workers_report_halo_split(self):
        solver = build_coupled(order=2)
        psolver = build_coupled(order=2)
        from repro.exec.partitioned import PartitionedBackend

        backend = PartitionedBackend(workers=4)
        backend.bind(psolver)
        psolver.backend = backend
        try:
            tel = get_telemetry()
            tel.enable()
            for _ in range(2):
                psolver.step()
                solver.step()
            snap = tel.snapshot()
        finally:
            backend.close()
        np.testing.assert_allclose(psolver.Q, solver.Q, rtol=1e-10,
                                   atol=1e-13 * max(np.abs(solver.Q).max(), 1e-300))
        split = worker_split(snap["phases"])
        assert len(split) == len(backend.plans) >= 2
        for s in split.values():
            assert s["compute_s"] > 0.0
            assert 0.0 <= s["halo_fraction"] <= 1.0
        assert snap["counters"]["elem_updates/corrector"] == \
            2 * psolver.mesh.n_elements * 2  # both solvers, two steps

    def test_lts_cluster_counters(self):
        from repro.core.lts import LocalTimeStepping

        solver = build_coupled(order=1)
        lts = LocalTimeStepping(solver)
        tel = get_telemetry()
        tel.enable()
        lts.run(solver.dt * 4)
        clusters = lts_cluster_updates(tel.snapshot()["counters"])
        assert clusters
        total = sum(c["elem_updates"] for c in clusters.values())
        assert total == sum(int(u * n) for u, n in
                            zip(lts.updates, lts.elem_count))


# ----------------------------------------------------------------------
class TestRunLog:
    def test_schema_round_trip(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunLog(path) as log:
            log.emit("manifest", **run_manifest(config={"command": "test"}))
            log.emit("heartbeat", step=2, sim_t=0.1, dt=0.05, energy=1.0,
                     wall_rate=20.0)
            log.emit("run_end", steps=2, wall_s=0.1, phases={}, counters={})
        result = validate_jsonl(path)
        assert result["errors"] == []
        assert result["events"] == {"manifest": 1, "heartbeat": 1, "run_end": 1}
        recs = [json.loads(line) for line in open(path)]
        assert [r["seq"] for r in recs] == [0, 1, 2]
        assert len({r["run_id"] for r in recs}) == 1

    def test_unknown_event_rejected_and_garbage_detected(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        log = RunLog(path)
        with pytest.raises(ValueError, match="unknown run-log event"):
            log.emit("explosion", boom=True)
        log.emit("heartbeat", step=1, sim_t=0.0, dt=0.1)  # missing fields
        log.close()
        with open(path, "a") as fh:
            fh.write("not json at all\n")
        result = validate_jsonl(path)
        msgs = [m for _, m in result["errors"]]
        assert any("missing required field" in m for m in msgs)
        assert any("invalid JSON" in m for m in msgs)

    def test_manifest_covers_solver_identity(self):
        solver = build_coupled(order=2)
        man = run_manifest(solver, config={"command": "t"}, resumed=False)
        for key in EVENT_FIELDS["manifest"]:
            assert key in man
        assert man["order"] == 2
        assert man["n_elements"] == solver.mesh.n_elements
        assert man["backend"] == solver.backend.describe()
        assert isinstance(man["fingerprint"], str)

    def test_numpy_values_serialize(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunLog(path) as log:
            log.emit("heartbeat", step=np.int64(3), sim_t=np.float64(0.5),
                     dt=np.float32(0.1), energy=np.float64(2.0),
                     wall_rate=np.array([1.0, 2.0]))
        assert validate_jsonl(path)["errors"] == []


# ----------------------------------------------------------------------
class TestObsSession:
    def test_kill_resume_appends_to_same_log(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        ckpt = str(tmp_path / "ckpt")

        # first leg: checkpoint, then "die" without a clean finish
        solver = build_coupled(order=1)
        obs = ObsSession(log_json=path, heartbeat_every=1,
                         config={"command": "leg1"})
        runner = ResilientRunner(solver, checkpoint_every=0.05,
                                 checkpoint_dir=ckpt, verbose=False,
                                 runlog=obs.runlog)
        obs.start(solver)
        runner.run(0.1, callback=obs.chain(None))
        obs.runlog.close()  # abrupt end: no run_end record

        # second leg resumes from the checkpoint and appends
        solver2 = build_coupled(order=1)
        obs2 = ObsSession(log_json=path, heartbeat_every=1,
                          config={"command": "leg2"})
        runner2 = ResilientRunner(solver2, checkpoint_every=0.05,
                                  checkpoint_dir=ckpt, verbose=False,
                                  runlog=obs2.runlog)
        runner2.resume(ckpt)
        assert solver2.t == pytest.approx(solver.t)
        obs2.start(solver2, resumed=True)
        runner2.run(0.2, callback=obs2.chain(None))
        obs2.finish(solver2)

        result = validate_jsonl(path)
        assert result["errors"] == []
        assert result["events"]["manifest"] == 2
        assert result["events"]["resume"] == 1
        assert result["events"]["checkpoint"] >= 2
        assert result["events"]["heartbeat"] >= 2
        assert result["events"]["run_end"] == 1
        manifests = [json.loads(line) for line in open(path)
                     if json.loads(line)["event"] == "manifest"]
        assert [m["resumed"] for m in manifests] == [False, True]
        assert manifests[0]["fingerprint"] == manifests[1]["fingerprint"]

    def test_recovery_and_diverged_events_logged(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        solver = build_coupled(order=2)
        injector = FaultInjector().corrupt_state(at_step=4, persistent=True)
        obs = ObsSession(log_json=path, config={"command": "doomed"})
        runner = ResilientRunner(solver, injector=injector, max_retries=2,
                                 verbose=False, runlog=obs.runlog)
        obs.start(solver)
        with pytest.raises(SimulationDiverged) as exc_info:
            runner.run(0.3, callback=obs.chain(None))
        obs.runlog.close()

        # satellite: the exception reports the wall clock spent
        assert exc_info.value.wall_s is not None
        assert exc_info.value.wall_s > 0.0
        assert "s wall" in str(exc_info.value)
        assert exc_info.value.diagnostics()["wall_s"] == exc_info.value.wall_s

        result = validate_jsonl(path)
        assert result["errors"] == []
        assert result["events"]["recovery"] == 2
        assert result["events"]["diverged"] == 1
        recs = [json.loads(line) for line in open(path)]
        div = [r for r in recs if r["event"] == "diverged"][0]
        assert div["attempts"] == 3 and div["wall_s"] > 0.0
        rec = [r for r in recs if r["event"] == "recovery"][0]
        assert rec["attempt"] == 1 and "NaN" in rec["reason"]

    def test_heartbeat_rate_and_chain(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        solver = build_coupled(order=1)
        seen = []
        obs = ObsSession(log_json=path, heartbeat_every=2)
        obs.start(solver)
        cb = obs.chain(lambda s: seen.append(s.t))
        for _ in range(5):
            solver.step()
            cb(solver)
        obs.finish(solver)
        assert len(seen) == 5
        recs = [json.loads(line) for line in open(path)]
        beats = [r for r in recs if r["event"] == "heartbeat"]
        assert [b["step"] for b in beats] == [2, 4]
        assert all(b["wall_rate"] > 0 for b in beats)
        assert all(np.isfinite(b["energy"]) for b in beats)

    def test_heartbeat_without_runlog_prints_to_stdout(self, capsys):
        """Satellite regression: an explicit ``--heartbeat-every`` without
        ``--log-json`` used to be silently ignored."""
        solver = build_coupled(order=1)
        obs = ObsSession(heartbeat_every=2)
        assert obs.active  # heartbeats alone make the session active
        obs.start(solver)
        cb = obs.chain(None)
        assert cb is not None
        for _ in range(4):
            solver.step()
            cb(solver)
        obs.finish(solver)
        out = capsys.readouterr().out
        beats = [ln for ln in out.splitlines() if ln.startswith("[heartbeat]")]
        assert len(beats) == 2
        assert "step 2" in beats[0] and "step 4" in beats[1]
        assert "sim t" in beats[0] and "steps/s" in beats[0]

    def test_heartbeat_with_runlog_stays_off_stdout(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        solver = build_coupled(order=1)
        obs = ObsSession(log_json=path, heartbeat_every=1)
        obs.start(solver)
        cb = obs.chain(None)
        for _ in range(2):
            solver.step()
            cb(solver)
        obs.finish(solver)
        assert "[heartbeat]" not in capsys.readouterr().out
        recs = [json.loads(line) for line in open(path)]
        assert sum(r["event"] == "heartbeat" for r in recs) == 2

    def test_finish_is_exception_safe(self, tmp_path, capsys):
        """Satellite: an exception mid-``finish()`` (here: the trace export
        hitting a nonexistent directory) must still close the run log and
        disable the session-owned registry."""
        log_path = str(tmp_path / "run.jsonl")
        bad_trace = str(tmp_path / "no-such-dir" / "out.trace.json")
        solver = build_coupled(order=1)
        obs = ObsSession(profile=True, trace=bad_trace, log_json=log_path)
        tel = get_telemetry()
        assert tel.enabled
        obs.start(solver)
        solver.step()
        with pytest.raises(OSError):
            obs.finish(solver)
        assert not tel.enabled, "registry leaked enabled after finish() raised"
        assert obs.runlog.closed
        capsys.readouterr()  # swallow partial output

    def test_inactive_session_is_transparent(self):
        obs = ObsSession()
        assert not obs.active
        cb = object()
        assert obs.chain(cb) is cb
        assert obs.chain(None) is None
        obs.start()
        obs.finish()  # must not raise without a solver or log


# ----------------------------------------------------------------------
class TestReport:
    def _fake_run(self, n_steps=3):
        solver = build_coupled(order=2)
        tel = get_telemetry()
        tel.enable()
        for _ in range(n_steps):
            solver.step()
        return solver, tel.snapshot()

    def test_roofline_rows_sane(self):
        solver, snap = self._fake_run()
        rows = roofline_rows(snap["phases"], snap["counters"],
                             order=solver.order, node="rome")
        kernels = {r["kernel"]: r for r in rows}
        assert set(kernels) == {"predictor", "corrector"}
        for r in rows:
            assert r["seconds"] > 0
            assert r["elem_updates"] == 3 * solver.mesh.n_elements
            assert r["measured_gflops"] == pytest.approx(
                r["gflop"] / r["seconds"])
            assert r["model_gflops"] > 0
            assert 0 < r["efficiency"] < 1  # NumPy won't beat the roofline

    def test_profile_lines_render(self):
        from repro.obs.report import profile_lines

        solver, snap = self._fake_run(n_steps=1)
        lines = profile_lines(snap, order=solver.order, wall_s=1.0)
        text = "\n".join(lines)
        assert "phase breakdown" in text
        assert "roofline" in text
        assert "predictor" in text and "corrector" in text

    def test_obs_report_cli(self, tmp_path, capsys):
        from repro.__main__ import main

        path = str(tmp_path / "run.jsonl")
        solver = build_coupled(order=1)
        obs = ObsSession(profile=True, log_json=path, heartbeat_every=2,
                         config={"command": "cli-test"})
        obs.start(solver)
        cb = obs.chain(None)
        for _ in range(4):
            solver.step()
            cb(solver)
        obs.finish(solver)
        capsys.readouterr()

        assert main(["obs-report", path, "--check"]) == 0
        out = capsys.readouterr().out
        assert "0 schema error(s) -> OK" in out
        assert "cli-test" in out
        assert "heartbeats: 2" in out
        assert "phase breakdown" in out
        assert "roofline" in out

        assert main(["obs-report", path, "--node", "atari2600"]) == 2

    def test_check_runlog_tool(self, tmp_path):
        import importlib.util
        import os

        spec = importlib.util.spec_from_file_location(
            "check_runlog",
            os.path.join(os.path.dirname(__file__), "..", "tools",
                         "check_runlog.py"),
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)

        path = str(tmp_path / "run.jsonl")
        with RunLog(path) as log:
            log.emit("manifest", **run_manifest(config={}))
        assert mod.main([path]) == 0
        assert mod.main([path, "--min-manifests", "2"]) == 1
        assert mod.main([path, "--require-heartbeat"]) == 1
        with open(path, "a") as fh:
            fh.write("garbage\n")
        assert mod.main([path]) == 1


# ----------------------------------------------------------------------
class TestRunLogDurability:
    """Crash-safe logging for ensemble workers (ISSUE 6 satellites)."""

    def test_durable_records_visible_before_close(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        log = RunLog(path, durable=True)
        log.emit("heartbeat", step=1, sim_t=0.0, dt=0.1, energy=0.0,
                 wall_rate=1.0)
        # no close(): a kill -9 right now must still leave the record
        with open(path) as fh:
            recs = [json.loads(line) for line in fh]
        assert len(recs) == 1 and recs[0]["event"] == "heartbeat"
        log.close()

    def test_torn_final_line_reported_not_failed(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with RunLog(path) as log:
            log.emit("heartbeat", step=1, sim_t=0.0, dt=0.1, energy=0.0,
                     wall_rate=1.0)
        with open(path, "a") as fh:
            fh.write('{"event": "heartbeat", "step": 2, "si')  # no newline
        result = validate_jsonl(path)
        assert result["errors"] == []
        assert result["truncated_tail"]
        assert result["records"] == 1  # the torn tail is not a record

    def test_garbage_with_newline_still_an_error(self, tmp_path):
        # only an UNTERMINATED final line is a legitimate crash artifact;
        # newline-terminated garbage is corruption and must keep failing
        path = str(tmp_path / "run.jsonl")
        with RunLog(path) as log:
            log.emit("heartbeat", step=1, sim_t=0.0, dt=0.1, energy=0.0,
                     wall_rate=1.0)
        with open(path, "a") as fh:
            fh.write("not json\n")
        result = validate_jsonl(path)
        assert result["errors"]
        assert not result["truncated_tail"]

    def test_torn_mid_file_line_still_an_error(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with open(path, "w") as fh:
            fh.write('{"torn": \n')
            fh.write('{"event": "heartbeat", "step": 2, "si')
        result = validate_jsonl(path)
        # the mid-file bad line errors even though the tail is tolerated
        assert any("invalid JSON" in m for _, m in result["errors"])
        assert result["truncated_tail"]

    def test_supervisor_events_schema(self, tmp_path):
        path = str(tmp_path / "ens.jsonl")
        with RunLog(path) as log:
            log.emit("member_start", member="m0", attempt=1,
                     scenario="quickstart", pid=123)
            log.emit("member_retry", member="m0", attempt=1,
                     reason="killed by signal 9", delay_s=0.25, resume=True,
                     dt_scale=1.0)
            log.emit("member_quarantined", member="m0", attempts=3,
                     diagnosis="worker_death after 3 attempt(s)",
                     verdict="worker_death", bundle=None)
            log.emit("member_end", member="m0", status="quarantined",
                     attempts=3, wall_s=1.5)
            log.emit("ensemble_summary", members=1, ok=0, recovered=0,
                     quarantined=1, wall_s=2.0)
        result = validate_jsonl(path)
        assert result["errors"] == []
        assert result["records"] == 5
        # an incomplete supervisor event is caught by validation
        with RunLog(str(tmp_path / "x.jsonl")) as bad:
            bad.emit("member_start", member="m")
        msgs = [m for _, m in validate_jsonl(str(tmp_path / "x.jsonl"))["errors"]]
        assert any("missing required field" in m for m in msgs)
