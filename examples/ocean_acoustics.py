#!/usr/bin/env python3
"""Ocean acoustics + gravity: the two wave families in one water column.

Demonstrates the physics separation the fully coupled model captures and
shallow-water models cannot (paper Secs. 1-3): in a closed water box the
same initial pressure disturbance excites

* acoustic organ-pipe modes (periods ~ 4h/c, set by compressibility), and
* surface gravity waves (dispersion w^2 = g k tanh(k h)),

both measured here against their exact frequencies.

Run:  python examples/ocean_acoustics.py
"""

import numpy as np
from scipy.optimize import brentq

from repro.analysis.spectra import amplitude_spectrum
from repro.core.materials import acoustic
from repro.core.riemann import FaceKind
from repro.core.solver import CoupledSolver
from repro.mesh.generators import box_mesh


def main():
    h, L, c, rho, g = 1.0, 4.0, 20.0, 1000.0, 9.81
    ocean = acoustic(rho, c)
    m = box_mesh(
        np.linspace(0, L, 9), np.linspace(0, 0.5, 2), np.linspace(-h, 0, 5), [ocean]
    )
    m.glue_periodic(np.array([L, 0, 0]))
    m.glue_periodic(np.array([0, 0.5, 0]))

    def tagger(cent, nrm):
        tags = np.full(len(cent), FaceKind.WALL.value)
        tags[nrm[:, 2] > 0.99] = FaceKind.GRAVITY_FREE_SURFACE.value
        return tags

    m.tag_boundary(tagger)
    solver = CoupledSolver(m, order=3)
    print(f"water box {L} x {h} m, c = {c} m/s: {m.n_elements} elements")

    # exact frequencies of the k = 2 pi / L modes
    k = 2 * np.pi / L

    def f_grav_exact(kap):
        return c**2 * (k**2 - kap**2) - g * kap * np.tanh(kap * h)

    kap = brentq(f_grav_exact, 1e-9, k * (1 - 1e-12))
    om_gravity = np.sqrt(g * kap * np.tanh(kap * h))
    # lowest acoustic branch: omega^2 = c^2 (k^2 + m^2), -g m tan(m h) = w^2
    def f_ac(mv):
        w2 = c**2 * (k**2 + mv**2)
        return w2 + g * mv * np.tan(mv * h)

    m_ac = brentq(f_ac, 0.5 * np.pi / h + 1e-6, 1.5 * np.pi / h - 1e-6)
    om_acoustic = np.sqrt(c**2 * (k**2 + m_ac**2))
    print(f"exact gravity-mode omega  = {om_gravity:.4f} rad/s "
          f"(incompressible {np.sqrt(g * k * np.tanh(k * h)):.4f})")
    print(f"exact acoustic-mode omega = {om_acoustic:.4f} rad/s "
          f"(rigid organ pipe {c * np.pi / (2 * h) * np.sqrt(1 + (2 * k * h / np.pi) ** 2):.4f})")

    # seed both: a pressure disturbance cos(k x), depth-uniform
    def ic(x):
        out = np.zeros((len(x), 9))
        p = 50.0 * np.cos(k * x[:, 0])
        out[:, 0] = out[:, 1] = out[:, 2] = -p
        return out

    solver.set_initial_condition(ic)
    probe_xy = np.array([[0.05, 0.25]])
    ts, etas = [], []
    T_g = 2 * np.pi / om_gravity
    n_steps = int(1.2 * T_g / solver.dt)
    print(f"running {n_steps} steps ({1.2 * T_g:.1f} s simulated) ...")
    for _ in range(n_steps):
        solver.step()
        ts.append(solver.t)
        etas.append(solver.gravity.sample(probe_xy)[0])
    ts, etas = np.array(ts), np.array(etas)

    freqs, amps = amplitude_spectrum(ts, etas)
    om = 2 * np.pi * freqs
    # gravity peak: below 2x gravity frequency; acoustic peak: near om_acoustic
    low = om < 2 * om_gravity
    om_g_meas = om[low][np.argmax(amps[low])]
    hi = (om > 0.6 * om_acoustic) & (om < 1.6 * om_acoustic)
    om_a_meas = om[hi][np.argmax(amps[hi])] if hi.any() else np.nan
    print(f"measured gravity peak : {om_g_meas:.3f} rad/s "
          f"(error {abs(om_g_meas - om_gravity) / om_gravity * 100:.1f}%)")
    print(f"measured acoustic peak: {om_a_meas:.3f} rad/s "
          f"(error {abs(om_a_meas - om_acoustic) / om_acoustic * 100:.1f}%)")
    print("both wave families coexist on the same sea surface — the")
    print("superposition the paper measures in Palu Bay (Fig. 1).")


if __name__ == "__main__":
    main()
