#!/usr/bin/env python3
"""Supervised Palu scenario ensemble: the paper's hazard sweep, fault-tolerant.

The 2018 Palu event became tsunamigenic through a combination that no
single deterministic run would have pinned down in advance: hypocenter
location, transtensional loading, fast-velocity-weakening friction, and
the steep bay bathymetry.  An early-warning capability therefore runs
*ensembles* of perturbed scenarios — and runs them unattended, surviving
worker deaths, hangs, and torn writes.

This driver builds N perturbed members of the scaled Palu scenario
(hypocenter along strike, strike loading, friction b, bay depth — one
perturbation axis per member, cycled), shards them across worker
processes under the :mod:`repro.ensemble` supervision tree, and reports
the hazard spread (peak sea-surface excursion) across whatever fraction
of the fleet survived.

Run:  python examples/palu_ensemble.py [--members 4] [--workers 2]
      [--t-end 0.3] [--full]

By default the members run a coarsened Palu mesh so the whole ensemble
finishes in minutes; ``--full`` uses the same scaled configuration as
``python -m repro palu`` (much slower).
"""

import argparse

import numpy as np

from repro.ensemble import MemberSpec, RetryPolicy, Supervisor

#: perturbation axes of the paper's hazard sweep, cycled over members;
#: the member seed adds hypocenter jitter on top (see palu_builder)
AXES = [
    ("nucleation_y", [2000.0, 2400.0, 2800.0]),     # hypocenter along strike
    ("tau_strike", [13e6, 14e6, 15e6]),             # loading level
    ("rs_b", [0.013, 0.014, 0.015]),                # friction weakening
    ("bay_depth", [100.0, 120.0, 140.0]),           # bathymetry
]

#: coarsened discretization for the default (non ``--full``) run
COARSE = {"dx_fine": 700.0, "dx_coarse": 1400.0, "n_earth_layers": 4,
          "earth_depth": 2400.0}


def member_specs(n: int, t_end: float, seed: int, full: bool,
                 checkpoint_every: float | None):
    rng = np.random.default_rng(seed)
    specs = []
    for k in range(n):
        name, values = AXES[k % len(AXES)]
        perturb = {} if full else dict(COARSE)
        perturb[name] = values[int(rng.integers(len(values)))]
        specs.append(MemberSpec(
            member_id=f"palu_{k:04d}",
            builder="palu",
            perturb=perturb,
            seed=seed + k,
            t_end=t_end,
            checkpoint_every=checkpoint_every,
        ))
    return specs


def main(members: int = 4, workers: int = 2, t_end: float = 0.3,
         seed: int = 0, full: bool = False, out: str = "out/palu_ensemble",
         member_timeout: float = 600.0):
    specs = member_specs(members, t_end, seed, full,
                         checkpoint_every=max(t_end / 3, 0.05))
    print(f"palu ensemble: {members} member(s) on {workers} worker(s), "
          f"t_end = {t_end} s {'(full mesh)' if full else '(coarse mesh)'}")
    for s in specs:
        axis = {k: v for k, v in s.perturb.items() if k not in COARSE}
        print(f"  {s.member_id}: seed {s.seed}, perturb {axis}")

    supervisor = Supervisor(
        specs, workers=workers,
        retry=RetryPolicy(max_retries=3),
        member_timeout=member_timeout,
        out_dir=out, verbose=True,
    )
    result = supervisor.run()

    print()
    for line in result.lines():
        print(line)
    survivors = result.by_status("ok") + result.by_status("recovered")
    peaks = [m.summary.get("eta_abs_max") for m in survivors
             if m.summary.get("eta_abs_max") is not None]
    if peaks:
        peaks = np.asarray(peaks)
        print(f"hazard spread over {len(peaks)} surviving member(s): "
              f"peak |eta| min {peaks.min() * 1000:.3f} mm, "
              f"median {np.median(peaks) * 1000:.3f} mm, "
              f"max {peaks.max() * 1000:.3f} mm")
    if result.degraded:
        print("DEGRADED: quarantined members are excluded from the spread; "
              "see their diagnosis above and per-member logs in "
              f"{out}/<member>/run.jsonl")
    return result


if __name__ == "__main__":
    ap = argparse.ArgumentParser()
    ap.add_argument("--members", type=int, default=4)
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--t-end", type=float, default=0.3)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--full", action="store_true",
                    help="paper-scale mesh (same as `python -m repro palu`)")
    ap.add_argument("--out", default="out/palu_ensemble")
    ap.add_argument("--member-timeout", type=float, default=600.0)
    args = ap.parse_args()
    main(args.members, args.workers, args.t_end, args.seed, args.full,
         args.out, args.member_timeout)
