#!/usr/bin/env python3
"""Strong-scaling study on the simulated machines (paper Fig. 6).

Builds a Palu-like coupled mesh, clusters it for LTS, partitions it with
Eq. 28 weights, and sweeps node counts on the Mahti and SuperMUC-NG machine
models with different ranks-per-node — the full Sec. 6.3 experiment on the
simulated-machine substrate.

Run:  python examples/scaling_study.py
"""

import numpy as np

from repro.core.lts import cluster_elements
from repro.core.materials import acoustic, elastic
from repro.hpc.machine import MAHTI, SUPERMUC_NG
from repro.hpc.pinning import NodeTopology, pin_node
from repro.hpc.scaling import StrongScalingModel
from repro.mesh.generators import bathymetry_mesh
from repro.mesh.refine import refined_spacing


def build_mesh():
    earth = elastic(2700.0, 6000.0, 3464.0)
    ocean = acoustic(1000.0, 1500.0)

    def bathy(x, y):
        return -100 - 600 * np.exp(-(((x - 30e3) / 8e3) ** 2)) * (
            0.5 + 0.5 * np.tanh((y - 20e3) / 10e3)
        )

    xs = refined_spacing(0, 60e3, 4000, 1200, 15e3, 45e3)
    ys = refined_spacing(0, 120e3, 4000, 1200, 20e3, 100e3)
    zs = np.concatenate(
        [np.linspace(-30e3, -10e3, 4), refined_spacing(-10e3, -700, 3000, 1200, -10e3, -700)[1:]]
    )
    return bathymetry_mesh(xs, ys, bathy, 2, zs, earth, ocean)


def main():
    print("building Palu-like mesh ...")
    mesh = build_mesh()
    cluster, dt_min = cluster_elements(mesh, 5)
    print(f"  {mesh.n_elements} elements, LTS clusters {np.bincount(cluster)}")

    # pinning plans (Sec. 5.2) for the Rome node
    topo = NodeTopology(sockets=2, numa_per_socket=4, cores_per_numa=16)
    for rpn in (1, 2, 8):
        plan = pin_node(topo, rpn)
        print(f"  pinning {rpn} rank(s)/node: "
              f"{len(plan.worker_cpus[0])} worker CPUs/rank, "
              f"comm threads on CPUs {plan.comm_cpu}")

    nodes = [2, 4, 8, 16, 28]
    for machine, rpns in ((MAHTI, (1, 2, 8)), (SUPERMUC_NG, (1, 2))):
        print(f"\n== {machine.name} (node peak {machine.node.peak_gflops:.0f} GFLOPS) ==")
        model = StrongScalingModel(mesh, cluster, order=5, machine=machine)
        header = f"{'nodes':>6} | " + " | ".join(f"{r} rpn GF/node (eff)" for r in rpns)
        print(header)
        series = {r: model.sweep(nodes, ranks_per_node=r) for r in rpns}
        for i, n in enumerate(nodes):
            row = f"{n:6d} | " + " | ".join(
                f"{series[r][i].gflops_per_node:8.0f} ({series[r][i].parallel_efficiency:4.2f})"
                for r in rpns
            )
            print(row)

    # node-weight ablation (Sec. 6.3 last paragraph)
    model = StrongScalingModel(mesh, cluster, order=5, machine=MAHTI)
    r_on = model.simulate(24, 8, use_node_weights=True, force_straggler=True)
    r_off = model.simulate(24, 8, use_node_weights=False, force_straggler=True)
    print(f"\nnode weights off/on: {r_off.gflops_per_node / r_on.gflops_per_node * 100:.0f}% "
          f"(paper: 84%)")


if __name__ == "__main__":
    main()
