#!/usr/bin/env python3
"""Scenario A: fully coupled vs one-way linked earthquake-tsunami (Fig. 3).

Runs the scaled megathrust benchmark twice:

1. the fully coupled 3D Earth+ocean model (dynamic rupture, acoustics,
   gravity free surface), and
2. the one-way-linked workflow (earthquake-only 3D run -> seafloor uplift
   on a Cartesian grid -> nonlinear shallow-water solver),

then compares the sea-surface height along the cross-section through the
epicenter — the paper's Fig. 3b: agreement at tsunami wavelengths, ocean
acoustic oscillations only in the coupled model.

Run:  python examples/scenario_a_benchmark.py [--t-end 6.0]
"""

import argparse

import numpy as np

from repro.analysis.fields import surface_eta_transect
from repro.core.lts import LocalTimeStepping
from repro.obs import ObsSession, add_obs_args
from repro.sched import HookBus
from repro.scenarios.scenario_a import (
    ScenarioAConfig,
    build_coupled,
    build_earthquake_only,
    run_linked_tsunami,
)


def main(t_end: float = 6.0, n_transect: int = 41,
         checkpoint_every: float | None = None,
         checkpoint_dir: str | None = None, resume: str | None = None,
         backend: str = "serial", workers: int | None = None,
         profile: bool = False, trace: str | None = None,
         log_json: str | None = None,
         heartbeat_every: int | None = None,
         metrics: bool = False):
    cfg = ScenarioAConfig()

    # --- fully coupled run ----------------------------------------------
    print("== fully coupled model ==")
    solver, fault = build_coupled(cfg, backend=backend, workers=workers)
    print(f"  {solver.mesh.n_elements} elements, {len(fault)} fault faces, "
          f"{len(solver.gravity)} gravity faces")
    print(f"  execution backend: {solver.backend.describe()}")
    lts = LocalTimeStepping(solver)
    print(f"  LTS clusters: {np.bincount(lts.cluster)} "
          f"(update reduction {lts.statistics()['speedup']:.2f}x)")
    obs = ObsSession(
        profile=profile, trace=trace, log_json=log_json,
        heartbeat_every=heartbeat_every, metrics=metrics,
        config={"command": "scenario-a", "t_end": t_end, "backend": backend},
    )
    if checkpoint_every or checkpoint_dir or resume:
        from repro.core.resilience import ResilientRunner

        runner = ResilientRunner(
            solver, lts=lts,
            checkpoint_every=checkpoint_every, checkpoint_dir=checkpoint_dir,
            runlog=obs.runlog,
        )
        if resume:
            runner.resume(resume)
        obs.start(solver, resumed=bool(resume))
        runner.run(t_end, hooks=obs.subscribe(HookBus()))
    else:
        obs.start(solver)
        lts.run(t_end, hooks=obs.subscribe(HookBus()))
    obs.finish(solver)
    print(f"  rupture: Mw {fault.moment_magnitude():.2f}, "
          f"peak slip {fault.slip.max():.2f} m, "
          f"peak slip rate {fault.peak_slip_rate.max():.1f} m/s")
    x_line = np.linspace(cfg.x_extent[0] + cfg.dx, cfg.x_extent[1] - cfg.dx, n_transect)
    _, eta_coupled = surface_eta_transect(
        solver, [x_line[0], 0.0], [x_line[-1], 0.0], n_transect
    )

    # --- one-way linked run ----------------------------------------------
    print("== one-way linked model ==")
    eq, fault2, tracker = build_earthquake_only(cfg)
    print(f"  earthquake-only mesh: {eq.mesh.n_elements} elements")
    snapshots = [(0.0, tracker.uz.copy())]
    eq_hooks = HookBus()
    eq_hooks.on_sync(tracker)

    n_snap = 12
    for i in range(n_snap):
        eq.run(t_end * (i + 1) / n_snap, hooks=eq_hooks)
        snapshots.append((eq.t, tracker.uz.copy()))
    print(f"  final seafloor uplift: max {tracker.uz.max():.2f} m, "
          f"min {tracker.uz.min():.2f} m")
    swe = run_linked_tsunami(cfg, tracker, snapshots, t_end)
    eta_linked = swe.sample_eta(np.column_stack([x_line, np.zeros_like(x_line)]))

    # --- comparison (the Fig. 3b rows) ------------------------------------
    print(f"\n== sea-surface height along y = 0 at t = {t_end:.1f} s ==")
    print(f"{'x [m]':>9} {'coupled [m]':>12} {'linked [m]':>12}")
    for x, ec, el in zip(x_line, eta_coupled, eta_linked):
        print(f"{x:9.0f} {ec:12.4f} {el:12.4f}")

    corr = np.corrcoef(eta_coupled, eta_linked)[0, 1]
    print(f"\npeak eta  coupled {np.abs(eta_coupled).max():.3f} m | "
          f"linked {np.abs(eta_linked).max():.3f} m | correlation {corr:.3f}")
    print("(high-frequency acoustic ripples appear only in the coupled model;")
    print(f" expected reverberation period 4h/c = "
          f"{4 * cfg.ocean_depth / cfg.c_ocean:.2f} s)")
    return eta_coupled, eta_linked


if __name__ == "__main__":
    ap = argparse.ArgumentParser()
    ap.add_argument("--t-end", type=float, default=6.0)
    ap.add_argument("--checkpoint-every", type=float, default=None,
                    help="simulated seconds between checkpoints")
    ap.add_argument("--checkpoint-dir", default=None)
    ap.add_argument("--resume", default=None,
                    help="checkpoint file or directory to resume from")
    ap.add_argument("--backend", default="serial", choices=["serial", "partitioned"])
    ap.add_argument("--workers", type=int, default=None,
                    help="thread-pool size for the partitioned backend")
    add_obs_args(ap)
    args = ap.parse_args()
    main(args.t_end, checkpoint_every=args.checkpoint_every,
         checkpoint_dir=args.checkpoint_dir, resume=args.resume,
         backend=args.backend, workers=args.workers, profile=args.profile,
         trace=args.trace, log_json=args.log_json,
         heartbeat_every=args.heartbeat_every)
