#!/usr/bin/env python3
"""Quickstart: a fully coupled Earth-ocean simulation in ~40 lines.

Sets up a small layered domain (elastic crust under a compressible ocean
with a gravitational free surface), fires a buried explosive point source,
and watches the ocean respond: the fast acoustic wave arrives first, the
sea surface bulges, and a slow surface gravity wave remains — the
separation of scales at the heart of the paper.

Long runs can checkpoint and resume (see README "Long runs: checkpointing
& recovery"):

    python examples/quickstart.py --checkpoint-every 0.5 --checkpoint-dir out/ckpt
    python examples/quickstart.py --resume out/ckpt --t-end 4.0

Run:  python examples/quickstart.py
"""

import argparse

import numpy as np

from repro.analysis.receivers import ReceiverArray
from repro.core.materials import acoustic, elastic
from repro.core.solver import CoupledSolver, PointSource, ocean_surface_gravity_tagger
from repro.mesh.generators import layered_ocean_mesh
from repro.obs import ObsSession, add_obs_args
from repro.sched import HookBus


def main(t_end: float = 2.5, checkpoint_every: float | None = None,
         checkpoint_dir: str | None = None, resume: str | None = None,
         backend: str = "serial", workers: int | None = None,
         profile: bool = False, trace: str | None = None,
         log_json: str | None = None,
         heartbeat_every: int | None = None,
         metrics: bool = False):
    # --- domain: 4 x 4 km, 1.5 km of crust under a 500 m ocean ----------
    crust = elastic(rho=2700.0, cp=4000.0, cs=2300.0)
    ocean = acoustic(rho=1000.0, cp=1500.0)
    xs = np.linspace(0.0, 4000.0, 9)
    mesh = layered_ocean_mesh(
        xs, xs,
        zs_earth=np.linspace(-2000.0, -500.0, 4),
        zs_ocean=np.linspace(-500.0, 0.0, 3),
        earth=crust, ocean=ocean,
    )
    mesh.tag_boundary(ocean_surface_gravity_tagger(mesh))
    solver = CoupledSolver(mesh, order=2, backend=backend, workers=workers)
    print(f"mesh: {mesh.n_elements} elements, {solver.n_dof} DOF, dt = {solver.dt * 1e3:.2f} ms")
    print(f"execution backend: {solver.backend.describe()}")
    print(f"gravity free-surface faces: {len(solver.gravity)}")

    # --- an explosive (isotropic moment) source in the crust ------------
    f0 = 2.0  # Hz

    def ricker(t):
        a = (np.pi * f0 * (t - 0.6)) ** 2
        return (1.0 - 2.0 * a) * np.exp(-a)

    solver.add_source(
        PointSource([2000.0, 2000.0, -1200.0], ricker, moment=[5e13] * 3 + [0, 0, 0])
    )

    # --- receivers: one on the seafloor, one mid-ocean ------------------
    receivers = ReceiverArray(
        solver, np.array([[2000.0, 2000.0, -490.0], [2000.0, 2000.0, -250.0]]), every=2
    )

    # --- run -------------------------------------------------------------
    print(f"running to t = {t_end} s ...")
    eta_peak = {"max": 0.0}

    obs = ObsSession(
        profile=profile, trace=trace, log_json=log_json,
        heartbeat_every=heartbeat_every, metrics=metrics,
        config={"command": "quickstart", "t_end": t_end, "backend": backend},
    )

    # everything that observes the run subscribes to one hook bus
    hooks = HookBus()
    receivers.subscribe(hooks)

    @hooks.on_sync
    def watch(s):
        eta_peak["max"] = max(eta_peak["max"], float(np.abs(s.gravity.eta).max()))

    obs.subscribe(hooks)

    if checkpoint_every or checkpoint_dir or resume:
        from repro.core.resilience import ResilientRunner

        runner = ResilientRunner(
            solver, checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir, runlog=obs.runlog,
        )
        if resume:
            runner.resume(resume)
        obs.start(solver, resumed=bool(resume))
        runner.run(t_end, hooks=hooks)
    else:
        obs.start(solver)
        solver.run(t_end, hooks=hooks)

    # --- report ----------------------------------------------------------
    p = receivers.pressure()
    t = receivers.t
    i_max = int(np.argmax(np.abs(p[:, 1])))
    print(f"peak mid-ocean pressure {np.abs(p[:, 1]).max():.1f} Pa at t = {t[i_max]:.2f} s")
    xy, eta = solver.gravity.surface_height()
    print(f"peak sea-surface displacement during run: {eta_peak['max'] * 1000:.3f} mm")
    print(f"final surface: max {eta.max() * 1000:.3f} mm, min {eta.min() * 1000:.3f} mm")
    k = np.argmax(np.abs(eta))
    print(f"largest remaining displacement above (x, y) = ({xy[k, 0]:.0f}, {xy[k, 1]:.0f}) m")
    print("energy in the domain:", f"{solver.energy():.3e} J")
    obs.finish(solver)
    return solver


if __name__ == "__main__":
    ap = argparse.ArgumentParser()
    ap.add_argument("--t-end", type=float, default=2.5)
    ap.add_argument("--checkpoint-every", type=float, default=None,
                    help="simulated seconds between checkpoints")
    ap.add_argument("--checkpoint-dir", default=None)
    ap.add_argument("--resume", default=None,
                    help="checkpoint file or directory to resume from")
    ap.add_argument("--backend", default="serial", choices=["serial", "partitioned"])
    ap.add_argument("--workers", type=int, default=None,
                    help="thread-pool size for the partitioned backend")
    add_obs_args(ap)
    args = ap.parse_args()
    main(args.t_end, args.checkpoint_every, args.checkpoint_dir, args.resume,
         backend=args.backend, workers=args.workers, profile=args.profile,
         trace=args.trace, log_json=args.log_json,
         heartbeat_every=args.heartbeat_every)
