#!/usr/bin/env python3
"""Palu Bay: supershear strike-slip earthquake and tsunami (paper Fig. 1).

The scaled fully coupled Palu scenario: a vertical strike-slip fault with a
transtensional rake crosses a narrow, deep bay; nucleation at the north end
drives a unilateral (southward) rupture that goes supershear; the dip-slip
component of the slip deforms the seafloor, sourcing a tsunami trapped in
the bay while acoustic waves reverberate through the water column.

Prints the paper's Fig. 1 diagnostics: rupture speed vs shear speed (Mach
cone), sea-surface height map extrema, uplift/subsidence quadrants.

Run:  python examples/palu_bay.py [--t-end 4.0]
"""

import argparse

import numpy as np

from repro.analysis.fields import sea_surface_grid
from repro.core.lts import LocalTimeStepping
from repro.obs import ObsSession, add_obs_args
from repro.sched import HookBus
from repro.scenarios.palu import PaluConfig, build_coupled


def rupture_speed_along_strike(fault, y_min=-3000.0, y_max=3000.0):
    """Median front speed from rupture-time arrivals along strike."""
    y = fault.points[:, :, 1]
    rt = fault.rupture_time
    fin = np.isfinite(rt)
    if fin.sum() < 10:
        return np.nan
    # nucleation at +y: front moves towards -y
    ys = y[fin]
    ts = rt[fin]
    order = np.argsort(ys)
    ys, ts = ys[order], ts[order]
    sel = (ys > y_min) & (ys < y_max) & (ts > 0.05)
    if sel.sum() < 5:
        return np.nan
    # linear fit distance-vs-time of the southward front
    A = np.vstack([ts[sel], np.ones(sel.sum())]).T
    slope, _ = np.linalg.lstsq(A, -(ys[sel]), rcond=None)[0]
    return float(abs(slope))


def main(t_end: float = 4.0, checkpoint_every: float | None = None,
         checkpoint_dir: str | None = None, resume: str | None = None,
         backend: str = "serial", workers: int | None = None,
         profile: bool = False, trace: str | None = None,
         log_json: str | None = None,
         heartbeat_every: int | None = None,
         metrics: bool = False):
    cfg = PaluConfig()
    solver, fault = build_coupled(cfg, backend=backend, workers=workers)
    print(f"mesh: {solver.mesh.n_elements} elements "
          f"({int(solver.mesh.is_acoustic_elem.sum())} ocean), "
          f"{len(fault)} fault faces, {len(solver.gravity)} gravity faces")
    print(f"execution backend: {solver.backend.describe()}")
    lts = LocalTimeStepping(solver)
    st = lts.statistics()
    print(f"LTS clusters {[int(c) for c in st['counts']]}, update reduction {st['speedup']:.2f}x")

    obs = ObsSession(
        profile=profile, trace=trace, log_json=log_json,
        heartbeat_every=heartbeat_every, metrics=metrics,
        config={"command": "palu", "t_end": t_end, "backend": backend},
    )
    runner = None
    if checkpoint_every or checkpoint_dir or resume:
        from repro.core.resilience import ResilientRunner

        runner = ResilientRunner(
            solver, lts=lts,
            checkpoint_every=checkpoint_every, checkpoint_dir=checkpoint_dir,
            runlog=obs.runlog,
        )
        if resume:
            runner.resume(resume)
    obs.start(solver, resumed=bool(resume))
    hooks = obs.subscribe(HookBus())

    checkpoints = np.linspace(t_end / 4, t_end, 4)
    for tc in checkpoints:
        if tc <= solver.t:
            continue  # already covered by the restored checkpoint
        if runner is not None:
            runner.run(tc, hooks=hooks)
        else:
            lts.run(tc, hooks=hooks)
        vr = rupture_speed_along_strike(fault)
        print(f"t = {tc:4.1f} s | ruptured {fault.ruptured_fraction() * 100:5.1f}% | "
              f"peak V {fault.peak_slip_rate.max():6.2f} m/s | "
              f"eta [{solver.gravity.eta.min():+7.3f}, {solver.gravity.eta.max():+7.3f}] m | "
              f"front speed {vr if np.isnan(vr) else round(vr):>5} m/s")

    cs = cfg.earth_material.cs
    vr = rupture_speed_along_strike(fault)
    print(f"\nshear speed {cs:.0f} m/s, rupture front {vr:.0f} m/s "
          f"-> {'SUPERSHEAR' if vr > cs else 'sub-shear'} "
          f"(Mach number {vr / cs:.2f})")
    print(f"moment magnitude (scaled event): Mw {fault.moment_magnitude():.2f}")

    # uplift/subsidence quadrants (paper Fig. 1d: subsidence SE, uplift NW)
    xs = np.linspace(cfg.x_extent[0], cfg.x_extent[1], 33)
    ys = np.linspace(cfg.y_extent[0], cfg.y_extent[1], 49)
    X, Y, eta = sea_surface_grid(solver, xs, ys)
    for name, mask in [
        ("NW", (X < cfg.fault_x) & (Y > 0)),
        ("NE", (X > cfg.fault_x) & (Y > 0)),
        ("SW", (X < cfg.fault_x) & (Y < 0)),
        ("SE", (X > cfg.fault_x) & (Y < 0)),
    ]:
        print(f"  mean eta {name}: {eta[mask].mean() * 100:+.2f} cm")
    obs.finish(solver)
    return solver, fault


if __name__ == "__main__":
    ap = argparse.ArgumentParser()
    ap.add_argument("--t-end", type=float, default=4.0)
    ap.add_argument("--checkpoint-every", type=float, default=None,
                    help="simulated seconds between checkpoints")
    ap.add_argument("--checkpoint-dir", default=None)
    ap.add_argument("--resume", default=None,
                    help="checkpoint file or directory to resume from")
    ap.add_argument("--backend", default="serial", choices=["serial", "partitioned"])
    ap.add_argument("--workers", type=int, default=None,
                    help="thread-pool size for the partitioned backend")
    add_obs_args(ap)
    args = ap.parse_args()
    main(args.t_end, args.checkpoint_every, args.checkpoint_dir, args.resume,
         backend=args.backend, workers=args.workers, profile=args.profile,
         trace=args.trace, log_json=args.log_json,
         heartbeat_every=args.heartbeat_every)
